//! Reading and writing memory traces as files.
//!
//! The paper drives its simulator from Pin traces. This module provides the
//! equivalent adoption path for this reproduction: a plain-text trace format
//! any instrumentation tool (Pin, DynamoRIO, `valgrind --tool=lackey`, an
//! emulator) can emit, plus a reader that replays it as a
//! [`MemAccess`](eeat_types::MemAccess) stream.
//!
//! # Format
//!
//! One record per line, whitespace separated:
//!
//! ```text
//! <L|S> <hex virtual address> <instruction gap>
//! # comments and blank lines are ignored
//! L 7f3a00001000 3
//! S 7f3a00001040 2
//! ```
//!
//! `L`/`S` mark loads and stores; the gap is the number of instructions
//! executed since the previous record (≥ 1).

use std::io::{self, BufRead, Write};

use eeat_types::{AccessKind, MemAccess, VirtAddr};

/// Writes `accesses` to `out` in the text trace format.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
///
/// # Examples
///
/// ```
/// use eeat_types::{MemAccess, VirtAddr};
/// use eeat_workloads::trace_file;
///
/// let mut buf = Vec::new();
/// trace_file::write_trace(&mut buf, [MemAccess::load(VirtAddr::new(0x1000))])?;
/// assert_eq!(String::from_utf8(buf).unwrap(), "L 1000 1\n");
/// # Ok::<(), std::io::Error>(())
/// ```
pub fn write_trace<W, I>(out: &mut W, accesses: I) -> io::Result<()>
where
    W: Write,
    I: IntoIterator<Item = MemAccess>,
{
    for access in accesses {
        let kind = match access.kind() {
            AccessKind::Load => 'L',
            AccessKind::Store => 'S',
        };
        writeln!(out, "{kind} {:x} {}", access.vaddr(), access.instructions())?;
    }
    Ok(())
}

/// Errors produced while parsing a trace.
#[derive(Debug)]
pub enum TraceReadError {
    /// The underlying reader failed.
    Io(io::Error),
    /// A record could not be parsed (line number and message).
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
}

impl std::fmt::Display for TraceReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceReadError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceReadError::Parse { line, message } => {
                write!(f, "trace parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for TraceReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceReadError::Io(e) => Some(e),
            TraceReadError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for TraceReadError {
    fn from(e: io::Error) -> Self {
        TraceReadError::Io(e)
    }
}

/// Reads a complete text trace from `input`.
///
/// Blank lines and lines starting with `#` are skipped.
///
/// # Errors
///
/// Returns [`TraceReadError`] on I/O failure or the first malformed record.
///
/// # Examples
///
/// ```
/// use eeat_workloads::trace_file;
///
/// let trace = "# demo\nL 1000 1\nS 2040 3\n";
/// let accesses = trace_file::read_trace(trace.as_bytes())?;
/// assert_eq!(accesses.len(), 2);
/// assert_eq!(accesses[1].instructions(), 3);
/// # Ok::<(), trace_file::TraceReadError>(())
/// ```
pub fn read_trace<R: BufRead>(input: R) -> Result<Vec<MemAccess>, TraceReadError> {
    let mut accesses = Vec::new();
    for (idx, line) in input.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        accesses.push(parse_record(line).map_err(|message| TraceReadError::Parse {
            line: idx + 1,
            message,
        })?);
    }
    Ok(accesses)
}

fn parse_record(line: &str) -> Result<MemAccess, String> {
    let mut fields = line.split_whitespace();
    let kind = match fields.next() {
        Some("L") | Some("l") => AccessKind::Load,
        Some("S") | Some("s") => AccessKind::Store,
        Some(other) => return Err(format!("unknown access kind {other:?}")),
        None => return Err("empty record".into()),
    };
    let addr = fields.next().ok_or("missing address")?;
    let addr = u64::from_str_radix(addr.trim_start_matches("0x"), 16)
        .map_err(|_| format!("bad hex address {addr:?}"))?;
    let gap = match fields.next() {
        Some(g) => g.parse::<u32>().map_err(|_| format!("bad gap {g:?}"))?,
        None => 1,
    };
    if gap == 0 {
        return Err("instruction gap must be at least 1".into());
    }
    if fields.next().is_some() {
        return Err("trailing fields".into());
    }
    Ok(MemAccess::new(VirtAddr::new(addr), kind, gap))
}

/// The smallest set of page-aligned regions covering every address of a
/// trace, merging touches closer than `gap_bytes` — used to construct an
/// [`AddressSpace`](../../eeat_os/struct.AddressSpace.html) for replay.
pub fn covering_regions(accesses: &[MemAccess], gap_bytes: u64) -> Vec<(u64, u64)> {
    if accesses.is_empty() {
        return Vec::new();
    }
    let mut pages: Vec<u64> = accesses.iter().map(|a| a.vaddr().raw() >> 12).collect();
    pages.sort_unstable();
    pages.dedup();

    let gap_pages = (gap_bytes >> 12).max(1);
    let mut regions = Vec::new();
    let mut start = pages[0];
    let mut last = pages[0];
    for &page in &pages[1..] {
        if page - last > gap_pages {
            regions.push((start << 12, (last - start + 1) << 12));
            start = page;
        }
        last = page;
    }
    regions.push((start << 12, (last - start + 1) << 12));
    regions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let original = vec![
            MemAccess::new(VirtAddr::new(0x1000), AccessKind::Load, 1),
            MemAccess::new(VirtAddr::new(0xdead_b000), AccessKind::Store, 7),
            MemAccess::new(VirtAddr::new(0x42), AccessKind::Load, 2),
        ];
        let mut buf = Vec::new();
        write_trace(&mut buf, original.clone()).unwrap();
        let parsed = read_trace(buf.as_slice()).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn comments_blanks_and_defaults() {
        let text = "# header\n\nL 0x1000\n  S 2000 4  \n";
        let parsed = read_trace(text.as_bytes()).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].instructions(), 1, "gap defaults to 1");
        assert_eq!(parsed[0].vaddr().raw(), 0x1000);
        assert_eq!(parsed[1].kind(), AccessKind::Store);
    }

    #[test]
    fn parse_errors_are_located() {
        for (text, needle) in [
            ("X 1000 1\n", "unknown access kind"),
            ("L zzzz 1\n", "bad hex"),
            ("L 1000 0\n", "at least 1"),
            ("L 1000 1 extra\n", "trailing"),
            ("L\n", "missing address"),
        ] {
            let err = read_trace(text.as_bytes()).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains("line 1"), "{msg}");
            assert!(msg.contains(needle), "{msg} should mention {needle}");
        }
    }

    #[test]
    fn covering_regions_merges_nearby_pages() {
        let accesses = vec![
            MemAccess::load(VirtAddr::new(0x1000)),
            MemAccess::load(VirtAddr::new(0x3000)), // 2 pages away: merged
            MemAccess::load(VirtAddr::new(0x100_0000)), // far: new region
        ];
        let regions = covering_regions(&accesses, 16 << 12);
        assert_eq!(regions, vec![(0x1000, 0x3000), (0x100_0000, 0x1000)]);
        assert!(covering_regions(&[], 4096).is_empty());
    }
}
