//! Access patterns within a memory region.

use core::fmt;

use eeat_types::rng::{bool_threshold, RngExt, SmallRng};

/// A probability precompiled for the hot loop: replicates
/// `rng.random_bool(p)` exactly, including the clamped edges consuming no
/// draw, but decides in the integer domain (see
/// [`bool_threshold`]) so steady-state draws skip the `f64` conversion.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) enum ProbDraw {
    /// `p <= 0`: always `false`, no draw consumed.
    #[default]
    Never,
    /// `p >= 1`: always `true`, no draw consumed.
    Always,
    /// `0 < p < 1`: one draw against the precomputed threshold.
    Thr(u64),
}

impl ProbDraw {
    pub(crate) fn new(p: f64) -> Self {
        if p <= 0.0 {
            ProbDraw::Never
        } else if p >= 1.0 {
            ProbDraw::Always
        } else {
            ProbDraw::Thr(bool_threshold(p))
        }
    }

    #[inline]
    pub(crate) fn draw(self, rng: &mut SmallRng) -> bool {
        match self {
            ProbDraw::Never => false,
            ProbDraw::Always => true,
            ProbDraw::Thr(t) => rng.random_bool_thr(t),
        }
    }
}

/// How a stream walks the bytes of one region.
///
/// Patterns are the TLB-relevant skeletons of real program behaviour:
/// a sequential scan touches each page many times before moving on (high
/// TLB locality), a page-sized stride touches a new page on every access
/// (defeats the TLB as soon as the region outgrows its reach), a hotspot
/// mixes a small hot working set with occasional cold excursions, and a
/// pointer chase jumps uniformly with a dependent-load flavour.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Pattern {
    /// Sequential scan with a fixed byte stride, wrapping at the region end.
    Stream {
        /// Bytes between consecutive accesses (e.g. 64 for a cache-line
        /// scan, 4096+ to touch a new page every time).
        stride: u64,
    },
    /// Uniformly random accesses over the whole region.
    Random,
    /// With probability `hot_prob` access the hot prefix
    /// (`hot_fraction` of the region), otherwise anywhere.
    Hotspot {
        /// Fraction of the region forming the hot set, in `(0, 1]`.
        hot_fraction: f64,
        /// Probability of accessing the hot set, in `[0, 1]`.
        hot_prob: f64,
    },
    /// A dependent-load random walk: each access determines the next slot,
    /// TLB-equivalent to `Random` but with a single trajectory.
    PointerChase,
    /// Hotspot jumps followed by short sequential bursts: every `burst`
    /// accesses pick a new base (hot with probability `hot_prob`), then walk
    /// `burst_stride` bytes at a time from it.
    ///
    /// This is the page-locality signature of pointer codes like mcf: the
    /// jump misses a small TLB, but the burst re-uses the page it landed on,
    /// so the 4 KiB miss ratio is ≈ 1/burst while huge pages also capture
    /// the jumps whenever the hot set spans few 2 MiB pages.
    HotspotBurst {
        /// Fraction of the region forming the hot set, in `(0, 1]`.
        hot_fraction: f64,
        /// Probability a jump lands in the hot set, in `[0, 1]`.
        hot_prob: f64,
        /// Accesses per burst (≥ 1; 1 degenerates to `Hotspot`).
        burst: u32,
        /// Bytes between consecutive burst accesses.
        burst_stride: u64,
    },
}

impl Pattern {
    /// Validates the pattern's parameters.
    pub(crate) fn validate(&self) -> Result<(), String> {
        match *self {
            Pattern::Stream { stride: 0 } => Err("stream stride must be non-zero".into()),
            Pattern::Hotspot {
                hot_fraction,
                hot_prob,
            } => validate_hotspot(hot_fraction, hot_prob),
            Pattern::HotspotBurst {
                hot_fraction,
                hot_prob,
                burst,
                burst_stride,
            } => {
                validate_hotspot(hot_fraction, hot_prob)?;
                if burst == 0 {
                    Err("burst must be at least 1".into())
                } else if burst_stride == 0 {
                    Err("burst_stride must be non-zero".into())
                } else {
                    Ok(())
                }
            }
            _ => Ok(()),
        }
    }
}

fn validate_hotspot(hot_fraction: f64, hot_prob: f64) -> Result<(), String> {
    if !(hot_fraction > 0.0 && hot_fraction <= 1.0) {
        Err(format!("hot_fraction {hot_fraction} out of (0, 1]"))
    } else if !(0.0..=1.0).contains(&hot_prob) {
        Err(format!("hot_prob {hot_prob} out of [0, 1]"))
    } else {
        Ok(())
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Pattern::Stream { stride } => write!(f, "stream(+{stride}B)"),
            Pattern::Random => write!(f, "random"),
            Pattern::Hotspot {
                hot_fraction,
                hot_prob,
            } => {
                write!(
                    f,
                    "hotspot({:.0}% @ p={:.2})",
                    hot_fraction * 100.0,
                    hot_prob
                )
            }
            Pattern::PointerChase => write!(f, "pointer-chase"),
            Pattern::HotspotBurst {
                hot_fraction,
                hot_prob,
                burst,
                burst_stride,
            } => write!(
                f,
                "hotspot-burst({:.1}% @ p={:.2}, {}x{}B)",
                hot_fraction * 100.0,
                hot_prob,
                burst,
                burst_stride
            ),
        }
    }
}

/// Per-region cursor state for one stream.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct Cursor {
    pub offset: u64,
    /// Remaining accesses in the current burst (`HotspotBurst` only).
    pub burst_left: u32,
    /// Start of the hot region within this instance (lazily drawn so the
    /// hot objects of different arenas do not alias in the same TLB sets,
    /// as identical allocation layouts otherwise would).
    pub hot_base: u64,
    pub hot_init: bool,
    /// Hot-set length in bytes, precomputed with `hot_base` (the `f64`
    /// fraction-of-region product is loop-invariant per instance).
    pub hot_len: u64,
    /// Precompiled `hot_prob`, cached with `hot_base`.
    pub hot_draw: ProbDraw,
}

/// `x % len`, avoiding the 64-bit divide when `x` is already in range or
/// one subtraction away — the common case for stride advances, where the
/// operand is a previous in-range offset plus one stride.
#[inline]
fn wrap(x: u64, len: u64) -> u64 {
    if x < len {
        x
    } else if x - len < len {
        x - len
    } else {
        x % len
    }
}

/// A region length with its precomputed division reciprocal: `rem(n)`
/// returns exactly `n % len` (Lemire's fastmod, 128-bit magic) without
/// the per-access 64-bit divide `PointerChase` otherwise pays on its
/// full-width mixed offsets. Regions are fixed at generator construction,
/// so the reciprocal is computed once per region instance.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RegionLen {
    len: u64,
    /// `ceil(2^128 / len)`; 0 for the degenerate `len <= 1`.
    magic: u128,
}

impl RegionLen {
    pub(crate) fn new(len: u64) -> Self {
        let magic = if len <= 1 {
            0
        } else {
            (u128::MAX / u128::from(len)) + 1
        };
        Self { len, magic }
    }

    #[inline]
    pub(crate) fn len(self) -> u64 {
        self.len
    }

    /// Exactly `n % self.len()` for every `n` (and 0 when `len <= 1`):
    /// `lowbits = magic * n mod 2^128` holds the fractional part of
    /// `n / len` in fixed point, and multiplying it back by `len` (keeping
    /// the high 128 bits of the 192-bit product) recovers the remainder.
    #[inline]
    pub(crate) fn rem(self, n: u64) -> u64 {
        if self.magic == 0 {
            return 0;
        }
        let lowbits = self.magic.wrapping_mul(u128::from(n));
        let d = u128::from(self.len);
        let hi = (lowbits >> 64) * d;
        let lo = ((lowbits & u128::from(u64::MAX)) * d) >> 64;
        ((hi + lo) >> 64) as u64
    }
}

/// Returns the instance's hot-region base and length, computing the
/// instance-invariant hot state (length, compiled probability, base draw)
/// on first use.
#[inline]
fn hot_state(
    cursor: &mut Cursor,
    len: u64,
    hot_fraction: f64,
    hot_prob: f64,
    rng: &mut SmallRng,
) -> (u64, u64) {
    if !cursor.hot_init {
        let hot_len = ((len as f64 * hot_fraction) as u64).max(1);
        cursor.hot_len = hot_len;
        cursor.hot_draw = ProbDraw::new(hot_prob);
        let slack = len - hot_len;
        cursor.hot_base = if slack == 0 {
            0
        } else {
            rng.random_range(0..=slack) & !4095
        };
        cursor.hot_init = true;
    }
    (cursor.hot_base, cursor.hot_len)
}

impl Pattern {
    /// Produces the next byte offset within a region of `region.len()`
    /// bytes, advancing `cursor` and drawing randomness from `rng`.
    ///
    /// Offsets are aligned down to 8 bytes (a word access never straddles a
    /// page in this model; sub-word behaviour is irrelevant to the TLB).
    pub(crate) fn next_offset(
        &self,
        region: RegionLen,
        cursor: &mut Cursor,
        rng: &mut SmallRng,
    ) -> u64 {
        let len = region.len();
        debug_assert!(len > 0);
        let offset = match *self {
            Pattern::Stream { stride } => {
                let at = wrap(cursor.offset, len);
                cursor.offset = wrap(cursor.offset + stride, len);
                at
            }
            Pattern::Random => rng.random_range(0..len),
            Pattern::Hotspot {
                hot_fraction,
                hot_prob,
            } => {
                let (base, hot_len) = hot_state(cursor, len, hot_fraction, hot_prob, rng);
                if cursor.hot_draw.draw(rng) {
                    base + rng.random_range(0..hot_len)
                } else {
                    rng.random_range(0..len)
                }
            }
            Pattern::PointerChase => {
                // Dependent jump: hash the current offset into the next.
                // `rem` is the precomputed-reciprocal `mixed % len`,
                // bit-identical to the divide it replaces.
                let mixed = cursor
                    .offset
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(rng.random_range(0..64u64));
                let next = region.rem(mixed);
                cursor.offset = next;
                next
            }
            Pattern::HotspotBurst {
                hot_fraction,
                hot_prob,
                burst,
                burst_stride,
            } => {
                if cursor.burst_left == 0 {
                    let (base, hot_len) = hot_state(cursor, len, hot_fraction, hot_prob, rng);
                    cursor.offset = if cursor.hot_draw.draw(rng) {
                        base + rng.random_range(0..hot_len)
                    } else {
                        rng.random_range(0..len)
                    };
                    cursor.burst_left = burst - 1;
                } else {
                    cursor.burst_left -= 1;
                    cursor.offset = wrap(cursor.offset + burst_stride, len);
                }
                cursor.offset
            }
        };
        offset & !7
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eeat_types::rng::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn region_len_rem_is_exact() {
        // The reciprocal remainder must be bit-identical to `%` for every
        // operand, since PointerChase's trajectory (and with it every
        // golden fixture) depends on it. Exercise realistic region sizes,
        // adversarial lengths around power-of-two boundaries, and a
        // pseudo-random sample of full-width operands.
        let lens = [
            2u64,
            3,
            4096,
            4097,
            (1 << 20) - 1,
            1 << 20,
            (1 << 20) + 1,
            (1 << 30) + 12345,
            (1 << 40) - 1,
            u64::MAX,
        ];
        let mut x = 0x1234_5678_9abc_def0u64;
        for &len in &lens {
            let r = RegionLen::new(len);
            assert_eq!(r.len(), len);
            for n in [
                0,
                1,
                len - 1,
                len,
                len.wrapping_add(1),
                u64::MAX,
                u64::MAX - 1,
            ] {
                assert_eq!(r.rem(n), n % len, "n={n} len={len}");
            }
            for _ in 0..10_000 {
                // SplitMix64 step: a cheap full-width operand stream.
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^= z >> 31;
                assert_eq!(r.rem(z), z % len, "n={z} len={len}");
            }
        }
        // Degenerate lengths never index out of bounds.
        assert_eq!(RegionLen::new(1).rem(u64::MAX), 0);
        assert_eq!(RegionLen::new(0).rem(42), 0);
    }

    #[test]
    fn stream_wraps_and_is_sequential() {
        let p = Pattern::Stream { stride: 64 };
        let mut c = Cursor::default();
        let mut r = rng();
        let len = 256;
        let offs: Vec<u64> = (0..6)
            .map(|_| p.next_offset(RegionLen::new(len), &mut c, &mut r))
            .collect();
        assert_eq!(offs, vec![0, 64, 128, 192, 0, 64]);
    }

    #[test]
    fn random_is_in_bounds_and_varied() {
        let p = Pattern::Random;
        let mut c = Cursor::default();
        let mut r = rng();
        let len = 1 << 20;
        let offs: Vec<u64> = (0..100)
            .map(|_| p.next_offset(RegionLen::new(len), &mut c, &mut r))
            .collect();
        assert!(offs.iter().all(|&o| o < len));
        let distinct_pages: std::collections::HashSet<u64> = offs.iter().map(|o| o >> 12).collect();
        assert!(
            distinct_pages.len() > 50,
            "random should spread across pages"
        );
    }

    #[test]
    fn hotspot_concentrates() {
        let p = Pattern::Hotspot {
            hot_fraction: 0.01,
            hot_prob: 0.9,
        };
        let mut c = Cursor::default();
        let mut r = rng();
        let len = 1u64 << 24;
        let hot_len = (len as f64 * 0.01) as u64;
        // Hot region sits at a per-instance random base.
        let mut offsets = Vec::new();
        for _ in 0..1000 {
            offsets.push(p.next_offset(RegionLen::new(len), &mut c, &mut r));
        }
        let base = c.hot_base;
        assert!(base + hot_len <= len, "hot region inside the instance");
        let hits = offsets
            .iter()
            .filter(|&&o| o >= base && o < base + hot_len)
            .count();
        assert!(
            hits > 850,
            "about 90% (+ cold overlaps) should land hot, got {hits}"
        );
    }

    #[test]
    fn pointer_chase_is_deterministic_per_seed() {
        let p = Pattern::PointerChase;
        let run = || {
            let mut c = Cursor::default();
            let mut r = rng();
            (0..20)
                .map(|_| p.next_offset(RegionLen::new(1 << 20), &mut c, &mut r))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn offsets_are_word_aligned() {
        let mut c = Cursor::default();
        let mut r = rng();
        for p in [
            Pattern::Stream { stride: 13 },
            Pattern::Random,
            Pattern::PointerChase,
        ] {
            for _ in 0..50 {
                assert_eq!(p.next_offset(RegionLen::new(4096), &mut c, &mut r) % 8, 0);
            }
        }
    }

    #[test]
    fn hotspot_burst_reuses_pages() {
        let p = Pattern::HotspotBurst {
            hot_fraction: 0.01,
            hot_prob: 0.5,
            burst: 4,
            burst_stride: 64,
        };
        let mut c = Cursor::default();
        let mut r = rng();
        let len = 1u64 << 30;
        // Count accesses landing on the same 4 KiB page as their predecessor:
        // with burst 4 and stride 64 roughly 3 in 4 accesses stay on-page.
        let mut same_page = 0;
        let mut last_page = u64::MAX;
        let n = 4000;
        for _ in 0..n {
            let page = p.next_offset(RegionLen::new(len), &mut c, &mut r) >> 12;
            if page == last_page {
                same_page += 1;
            }
            last_page = page;
        }
        let frac = same_page as f64 / n as f64;
        assert!((0.6..0.85).contains(&frac), "on-page fraction {frac}");
    }

    #[test]
    fn hotspot_burst_validation() {
        let good = Pattern::HotspotBurst {
            hot_fraction: 0.1,
            hot_prob: 0.5,
            burst: 4,
            burst_stride: 64,
        };
        assert!(good.validate().is_ok());
        assert!(Pattern::HotspotBurst {
            hot_fraction: 0.1,
            hot_prob: 0.5,
            burst: 0,
            burst_stride: 64
        }
        .validate()
        .is_err());
        assert!(Pattern::HotspotBurst {
            hot_fraction: 0.1,
            hot_prob: 0.5,
            burst: 4,
            burst_stride: 0
        }
        .validate()
        .is_err());
        assert!(good.to_string().contains("4x64B"));
    }

    #[test]
    fn validation() {
        assert!(Pattern::Stream { stride: 0 }.validate().is_err());
        assert!(Pattern::Stream { stride: 64 }.validate().is_ok());
        assert!(Pattern::Hotspot {
            hot_fraction: 0.0,
            hot_prob: 0.5
        }
        .validate()
        .is_err());
        assert!(Pattern::Hotspot {
            hot_fraction: 0.5,
            hot_prob: 1.5
        }
        .validate()
        .is_err());
        assert!(Pattern::Hotspot {
            hot_fraction: 0.5,
            hot_prob: 0.5
        }
        .validate()
        .is_ok());
        assert!(Pattern::Random.validate().is_ok());
    }

    #[test]
    fn display() {
        assert_eq!(Pattern::Random.to_string(), "random");
        assert_eq!(Pattern::Stream { stride: 64 }.to_string(), "stream(+64B)");
        assert!(Pattern::Hotspot {
            hot_fraction: 0.1,
            hot_prob: 0.9
        }
        .to_string()
        .contains("10%"));
    }
}
