//! The benchmark catalog: every workload the paper evaluates.
//!
//! The eight TLB-intensive workloads (Table 4) are modelled individually,
//! tuned toward the paper's reported behaviour; the remaining Spec2006 and
//! Parsec workloads of Figure 12 use lighter parameterized templates (they
//! stress the TLBs less by definition — under 5 L1 MPKI with 4 KiB pages).

use core::fmt;

use crate::pattern::Pattern;
use crate::spec::{PhaseSpec, RegionSpec, StreamSpec, WorkloadSpec};

/// The benchmark suite a workload comes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CPU2006.
    Spec2006,
    /// PARSEC.
    Parsec,
    /// BioBench.
    BioBench,
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Suite::Spec2006 => "Spec2006",
            Suite::Parsec => "Parsec",
            Suite::BioBench => "BioBench",
        })
    }
}

/// Every workload of the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant names are the benchmark names
pub enum Workload {
    // --- The TLB-intensive set (Table 4, Figures 10/11, Table 5) ---
    Astar,
    CactusADM,
    GemsFDTD,
    Mcf,
    Omnetpp,
    Zeusmp,
    Mummer,
    Canneal,
    // --- Remaining Spec2006 (Figure 12 top/middle) ---
    Perlbench,
    Bzip2,
    Gcc,
    Bwaves,
    Gamess,
    Milc,
    Gromacs,
    Leslie3d,
    Namd,
    Gobmk,
    DealII,
    Soplex,
    Povray,
    Calculix,
    Hmmer,
    Sjeng,
    Libquantum,
    H264ref,
    Tonto,
    Lbm,
    Wrf,
    Sphinx3,
    Xalancbmk,
    // --- Remaining Parsec (Figure 12 bottom) ---
    Blackscholes,
    Bodytrack,
    Facesim,
    Ferret,
    Fluidanimate,
    Freqmine,
    Raytrace,
    Swaptions,
    Vips,
    X264,
    Streamcluster,
    Dedup,
}

impl Workload {
    /// The TLB-intensive workloads (> 5 L1 TLB MPKI with 4 KiB pages) —
    /// the main evaluation set of Figures 10/11 and Table 5.
    pub const TLB_INTENSIVE: [Workload; 8] = [
        Workload::Astar,
        Workload::CactusADM,
        Workload::GemsFDTD,
        Workload::Mcf,
        Workload::Omnetpp,
        Workload::Zeusmp,
        Workload::Mummer,
        Workload::Canneal,
    ];

    /// The remaining Spec2006 workloads (Figure 12 top/middle).
    pub const OTHER_SPEC: [Workload; 23] = [
        Workload::Perlbench,
        Workload::Bzip2,
        Workload::Gcc,
        Workload::Bwaves,
        Workload::Gamess,
        Workload::Milc,
        Workload::Gromacs,
        Workload::Leslie3d,
        Workload::Namd,
        Workload::Gobmk,
        Workload::DealII,
        Workload::Soplex,
        Workload::Povray,
        Workload::Calculix,
        Workload::Hmmer,
        Workload::Sjeng,
        Workload::Libquantum,
        Workload::H264ref,
        Workload::Tonto,
        Workload::Lbm,
        Workload::Wrf,
        Workload::Sphinx3,
        Workload::Xalancbmk,
    ];

    /// The remaining Parsec workloads (Figure 12 bottom).
    pub const OTHER_PARSEC: [Workload; 12] = [
        Workload::Blackscholes,
        Workload::Bodytrack,
        Workload::Facesim,
        Workload::Ferret,
        Workload::Fluidanimate,
        Workload::Freqmine,
        Workload::Raytrace,
        Workload::Swaptions,
        Workload::Vips,
        Workload::X264,
        Workload::Streamcluster,
        Workload::Dedup,
    ];

    /// Every workload in the catalog.
    pub fn all() -> Vec<Workload> {
        let mut v = Vec::new();
        v.extend(Self::TLB_INTENSIVE);
        v.extend(Self::OTHER_SPEC);
        v.extend(Self::OTHER_PARSEC);
        v
    }

    /// The workload's name as the paper spells it.
    pub fn name(self) -> &'static str {
        self.spec().name
    }

    /// The suite the workload belongs to.
    pub fn suite(self) -> Suite {
        match self {
            Workload::Mummer => Suite::BioBench,
            Workload::Canneal
            | Workload::Blackscholes
            | Workload::Bodytrack
            | Workload::Facesim
            | Workload::Ferret
            | Workload::Fluidanimate
            | Workload::Freqmine
            | Workload::Raytrace
            | Workload::Swaptions
            | Workload::Vips
            | Workload::X264
            | Workload::Streamcluster
            | Workload::Dedup => Suite::Parsec,
            _ => Suite::Spec2006,
        }
    }

    /// Looks a workload up by its paper name (case-insensitive).
    pub fn by_name(name: &str) -> Option<Workload> {
        Self::all()
            .into_iter()
            .find(|w| w.name().eq_ignore_ascii_case(name))
    }

    /// Builds the workload's behavioural specification.
    pub fn spec(self) -> WorkloadSpec {
        match self {
            Workload::Astar => astar(),
            Workload::CactusADM => cactus_adm(),
            Workload::GemsFDTD => gems_fdtd(),
            Workload::Mcf => mcf(),
            Workload::Omnetpp => omnetpp(),
            Workload::Zeusmp => zeusmp(),
            Workload::Mummer => mummer(),
            Workload::Canneal => canneal(),

            Workload::Perlbench => light(Light {
                name: "perlbench",
                mb: 180,
                vmas: 24,
                thp_share: 0.3,
                intensity: 0.035,
            }),
            Workload::Bzip2 => light(Light {
                name: "bzip2",
                mb: 850,
                vmas: 4,
                thp_share: 0.9,
                intensity: 0.02,
            }),
            Workload::Gcc => light(Light {
                name: "gcc",
                mb: 230,
                vmas: 32,
                thp_share: 0.3,
                intensity: 0.04,
            }),
            Workload::Bwaves => light(Light {
                name: "bwaves",
                mb: 880,
                vmas: 6,
                thp_share: 0.95,
                intensity: 0.02,
            }),
            Workload::Gamess => light(Light {
                name: "gamess",
                mb: 60,
                vmas: 6,
                thp_share: 0.5,
                intensity: 0.008,
            }),
            Workload::Milc => light(Light {
                name: "milc",
                mb: 680,
                vmas: 8,
                thp_share: 0.9,
                intensity: 0.045,
            }),
            Workload::Gromacs => light(Light {
                name: "gromacs",
                mb: 40,
                vmas: 8,
                thp_share: 0.6,
                intensity: 0.01,
            }),
            Workload::Leslie3d => light(Light {
                name: "leslie3d",
                mb: 130,
                vmas: 6,
                thp_share: 0.9,
                intensity: 0.025,
            }),
            Workload::Namd => light(Light {
                name: "namd",
                mb: 45,
                vmas: 6,
                thp_share: 0.6,
                intensity: 0.008,
            }),
            Workload::Gobmk => light(Light {
                name: "gobmk",
                mb: 30,
                vmas: 12,
                thp_share: 0.3,
                intensity: 0.012,
            }),
            Workload::DealII => light(Light {
                name: "dealII",
                mb: 800,
                vmas: 24,
                thp_share: 0.5,
                intensity: 0.03,
            }),
            Workload::Soplex => light(Light {
                name: "soplex",
                mb: 440,
                vmas: 10,
                thp_share: 0.7,
                intensity: 0.045,
            }),
            Workload::Povray => light(Light {
                name: "povray",
                mb: 5,
                vmas: 6,
                thp_share: 0.2,
                intensity: 0.005,
            }),
            Workload::Calculix => light(Light {
                name: "calculix",
                mb: 170,
                vmas: 8,
                thp_share: 0.7,
                intensity: 0.015,
            }),
            Workload::Hmmer => light(Light {
                name: "hmmer",
                mb: 25,
                vmas: 4,
                thp_share: 0.5,
                intensity: 0.006,
            }),
            Workload::Sjeng => light(Light {
                name: "sjeng",
                mb: 170,
                vmas: 3,
                thp_share: 0.8,
                intensity: 0.02,
            }),
            Workload::Libquantum => light(Light {
                name: "libquantum",
                mb: 100,
                vmas: 2,
                thp_share: 0.95,
                intensity: 0.018,
            }),
            Workload::H264ref => light(Light {
                name: "h264ref",
                mb: 65,
                vmas: 8,
                thp_share: 0.5,
                intensity: 0.01,
            }),
            Workload::Tonto => light(Light {
                name: "tonto",
                mb: 45,
                vmas: 10,
                thp_share: 0.4,
                intensity: 0.012,
            }),
            Workload::Lbm => light(Light {
                name: "lbm",
                mb: 410,
                vmas: 2,
                thp_share: 0.98,
                intensity: 0.03,
            }),
            Workload::Wrf => light(Light {
                name: "wrf",
                mb: 700,
                vmas: 14,
                thp_share: 0.8,
                intensity: 0.025,
            }),
            Workload::Sphinx3 => light(Light {
                name: "sphinx3",
                mb: 45,
                vmas: 10,
                thp_share: 0.4,
                intensity: 0.03,
            }),
            Workload::Xalancbmk => light(Light {
                name: "xalancbmk",
                mb: 430,
                vmas: 40,
                thp_share: 0.25,
                intensity: 0.045,
            }),

            Workload::Blackscholes => light(Light {
                name: "blackscholes",
                mb: 615,
                vmas: 4,
                thp_share: 0.9,
                intensity: 0.01,
            }),
            Workload::Bodytrack => light(Light {
                name: "bodytrack",
                mb: 35,
                vmas: 10,
                thp_share: 0.4,
                intensity: 0.008,
            }),
            Workload::Facesim => light(Light {
                name: "facesim",
                mb: 310,
                vmas: 12,
                thp_share: 0.7,
                intensity: 0.025,
            }),
            Workload::Ferret => light(Light {
                name: "ferret",
                mb: 65,
                vmas: 16,
                thp_share: 0.4,
                intensity: 0.02,
            }),
            Workload::Fluidanimate => light(Light {
                name: "fluidanimate",
                mb: 430,
                vmas: 8,
                thp_share: 0.8,
                intensity: 0.025,
            }),
            Workload::Freqmine => light(Light {
                name: "freqmine",
                mb: 620,
                vmas: 20,
                thp_share: 0.5,
                intensity: 0.035,
            }),
            Workload::Raytrace => light(Light {
                name: "raytrace",
                mb: 300,
                vmas: 12,
                thp_share: 0.6,
                intensity: 0.02,
            }),
            Workload::Swaptions => light(Light {
                name: "swaptions",
                mb: 6,
                vmas: 6,
                thp_share: 0.3,
                intensity: 0.004,
            }),
            Workload::Vips => light(Light {
                name: "vips",
                mb: 30,
                vmas: 10,
                thp_share: 0.5,
                intensity: 0.01,
            }),
            Workload::X264 => light(Light {
                name: "x264",
                mb: 140,
                vmas: 8,
                thp_share: 0.7,
                intensity: 0.015,
            }),
            Workload::Streamcluster => light(Light {
                name: "streamcluster",
                mb: 110,
                vmas: 4,
                thp_share: 0.85,
                intensity: 0.03,
            }),
            Workload::Dedup => light(Light {
                name: "dedup",
                mb: 1600,
                vmas: 24,
                thp_share: 0.6,
                intensity: 0.04,
            }),
        }
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

const MB: u64 = 1 << 20;
/// One phase unit: 10 M instructions (phases span tens of millions of
/// instructions, matching the granularity visible in the paper's Figure 4).
const PHASE_UNIT: u64 = 10_000_000;

/// astar (Spec2006, 350 MB): grid pathfinding over a large map plus a
/// pointer-heavy open-list/node heap spread over many smaller allocations.
/// Phased: map-heavy search alternates with heap-heavy backtracking.
///
/// Tuning targets (see EXPERIMENTS.md): 4 KiB pages ≈ 30 L1 / 4 L2 MPKI;
/// under THP the map's 2 MiB hot set nearly eliminates walks while the L1
/// hit mix stays 4 KiB-dominated (Table 5: 75.7 / 24.3); under RMM_Lite the
/// 33 ranges give the 4-entry L1-range TLB a ≈ 68 % hit ratio.
fn astar() -> WorkloadSpec {
    WorkloadSpec {
        name: "astar",
        mem_ops_per_kilo_instr: 350,
        store_fraction: 0.25,
        regions: vec![
            RegionSpec {
                name: "map",
                bytes: 220 * MB,
                count: 1,
                thp_eligible: true,
            },
            RegionSpec {
                name: "nodes",
                bytes: 16 * MB,
                count: 8,
                thp_eligible: false,
            },
        ],
        streams: vec![
            // Map walks: jumps concentrated in a ~2 MiB search frontier
            // (one huge page), short bursts along grid rows. Cold jumps
            // walk the page table with 4 KiB pages, hit the L2 TLB's huge
            // reach under THP.
            StreamSpec {
                region: 0,
                pattern: Pattern::HotspotBurst {
                    hot_fraction: 0.0045,
                    hot_prob: 0.85,
                    burst: 4,
                    burst_stride: 96,
                },
                region_switch_prob: 0.0,
            },
            // Node-heap chases: a tiny hot head per arena (the 32 hot heads
            // together just fit the 64-entry L1-4KB TLB), hopping arenas
            // often enough to defeat the 4-entry L1-range TLB part-time.
            StreamSpec {
                region: 1,
                pattern: Pattern::HotspotBurst {
                    hot_fraction: 0.00006,
                    hot_prob: 0.9985,
                    burst: 3,
                    burst_stride: 64,
                },
                region_switch_prob: 0.45,
            },
        ],
        phases: vec![
            PhaseSpec {
                duration_units: 3,
                weights: vec![(0, 0.40), (1, 0.60)],
            },
            PhaseSpec {
                duration_units: 2,
                weights: vec![(0, 0.15), (1, 0.85)],
            },
        ],
        phase_unit_instructions: PHASE_UNIT,
        alloc_contiguity: 1.0,
    }
}

/// cactusADM (Spec2006, 690 MB): an Einstein-equation stencil sweeping a
/// huge grid (page-walk heavy with 4 KiB pages) next to well-localized
/// coefficient tables.
fn cactus_adm() -> WorkloadSpec {
    WorkloadSpec {
        name: "cactusADM",
        mem_ops_per_kilo_instr: 320,
        store_fraction: 0.35,
        regions: vec![
            RegionSpec {
                name: "grid",
                bytes: 640 * MB,
                count: 1,
                thp_eligible: true,
            },
            RegionSpec {
                name: "tables",
                bytes: 16 * MB,
                count: 3,
                thp_eligible: false,
            },
        ],
        streams: vec![
            // The stencil sweep: a little over one page per step, so nearly
            // every access touches a new 4 KiB page — and walks the page
            // table once the reach is exhausted (sequential walks keep the
            // PDE cache warm: cheap in references, dear in cycles).
            StreamSpec {
                region: 0,
                pattern: Pattern::Stream { stride: 1088 },
                region_switch_prob: 0.0,
            },
            // Coefficient tables: tight reuse, lives in the L1-4KB TLB.
            StreamSpec {
                region: 1,
                pattern: Pattern::HotspotBurst {
                    hot_fraction: 0.0002,
                    hot_prob: 0.995,
                    burst: 4,
                    burst_stride: 64,
                },
                region_switch_prob: 0.12,
            },
        ],
        phases: vec![PhaseSpec {
            duration_units: 1,
            weights: vec![(0, 0.12), (1, 0.88)],
        }],
        phase_unit_instructions: PHASE_UNIT,
        alloc_contiguity: 1.0,
    }
}

/// GemsFDTD (Spec2006, 860 MB): finite-difference time domain — long
/// sequential sweeps over several field arrays, with distinct E-field /
/// H-field update phases.
fn gems_fdtd() -> WorkloadSpec {
    WorkloadSpec {
        name: "GemsFDTD",
        mem_ops_per_kilo_instr: 380,
        store_fraction: 0.4,
        regions: vec![
            RegionSpec {
                name: "e-fields",
                bytes: 280 * MB,
                count: 1,
                thp_eligible: true,
            },
            RegionSpec {
                name: "h-fields",
                bytes: 280 * MB,
                count: 1,
                thp_eligible: true,
            },
            RegionSpec {
                name: "aux",
                bytes: 280 * MB,
                count: 1,
                thp_eligible: true,
            },
            RegionSpec {
                name: "control",
                bytes: 20 * MB,
                count: 1,
                thp_eligible: false,
            },
        ],
        streams: vec![
            StreamSpec {
                region: 0,
                pattern: Pattern::Stream { stride: 112 },
                region_switch_prob: 0.0,
            },
            StreamSpec {
                region: 1,
                pattern: Pattern::Stream { stride: 112 },
                region_switch_prob: 0.0,
            },
            StreamSpec {
                region: 2,
                pattern: Pattern::Stream { stride: 520 },
                region_switch_prob: 0.0,
            },
            StreamSpec {
                region: 3,
                pattern: Pattern::HotspotBurst {
                    hot_fraction: 0.002,
                    hot_prob: 0.995,
                    burst: 4,
                    burst_stride: 64,
                },
                region_switch_prob: 0.0,
            },
        ],
        phases: vec![
            // E-update: E and aux arrays plus control.
            PhaseSpec {
                duration_units: 2,
                weights: vec![(0, 0.45), (2, 0.20), (3, 0.35)],
            },
            // H-update: H array dominates.
            PhaseSpec {
                duration_units: 2,
                weights: vec![(1, 0.55), (3, 0.45)],
            },
            // Output/refresh phase: control-heavy.
            PhaseSpec {
                duration_units: 1,
                weights: vec![(2, 0.15), (3, 0.85)],
            },
        ],
        phase_unit_instructions: PHASE_UNIT,
        alloc_contiguity: 1.0,
    }
}

/// mcf (Spec2006, 1.7 GB): network-simplex pointer chasing over a huge arc
/// graph — the page-walk-dominated extreme of the suite.
fn mcf() -> WorkloadSpec {
    WorkloadSpec {
        name: "mcf",
        mem_ops_per_kilo_instr: 390,
        store_fraction: 0.3,
        regions: vec![
            RegionSpec {
                name: "arcs",
                bytes: 780 * MB,
                count: 2,
                thp_eligible: true,
            },
            RegionSpec {
                name: "stack",
                bytes: 16 * MB,
                count: 2,
                thp_eligible: false,
            },
        ],
        streams: vec![
            // Arc-graph chases: each jump reads a node (short burst). The
            // hot set is the active basis (~0.5% = 4 MB per arc region, two
            // 2 MiB pages) — far beyond the 4 KiB reach of L1 and L2, so
            // with base pages nearly every jump walks; under THP the hot
            // jumps hit the L1-2MB TLB.
            StreamSpec {
                region: 0,
                pattern: Pattern::HotspotBurst {
                    hot_fraction: 0.005,
                    hot_prob: 0.75,
                    burst: 4,
                    burst_stride: 128,
                },
                region_switch_prob: 0.02,
            },
            // Stack/temporaries: near-perfect locality across a few arenas.
            StreamSpec {
                region: 1,
                pattern: Pattern::HotspotBurst {
                    hot_fraction: 0.0005,
                    hot_prob: 0.98,
                    burst: 6,
                    burst_stride: 64,
                },
                region_switch_prob: 0.10,
            },
        ],
        phases: vec![
            PhaseSpec {
                duration_units: 3,
                weights: vec![(0, 0.55), (1, 0.45)],
            },
            // Pricing phases chase even more aggressively.
            PhaseSpec {
                duration_units: 2,
                weights: vec![(0, 0.70), (1, 0.30)],
            },
        ],
        phase_unit_instructions: PHASE_UNIT,
        alloc_contiguity: 1.0,
    }
}

/// omnetpp (Spec2006, 165 MB): discrete-event simulation — events and
/// network objects in many small heap arenas, high L1-4KB pressure but a
/// working set the L2 TLB mostly covers.
fn omnetpp() -> WorkloadSpec {
    WorkloadSpec {
        name: "omnetpp",
        mem_ops_per_kilo_instr: 340,
        store_fraction: 0.35,
        regions: vec![
            RegionSpec {
                name: "event-heap",
                bytes: 2 * MB,
                count: 32,
                thp_eligible: false,
            },
            RegionSpec {
                name: "topology",
                bytes: 16 * MB,
                count: 4,
                thp_eligible: true,
            },
        ],
        streams: vec![
            // Event objects: every event touches objects in several
            // different arenas (queue, module, message), so consecutive
            // accesses hop ranges — poison for the 4-entry L1-range TLB —
            // while the per-arena hot page keeps the L1-4KB TLB busy and
            // the total hot set stays within the L2 TLB's 4 KiB reach.
            StreamSpec {
                region: 0,
                pattern: Pattern::HotspotBurst {
                    hot_fraction: 0.004,
                    hot_prob: 0.99,
                    burst: 3,
                    burst_stride: 64,
                },
                region_switch_prob: 0.55,
            },
            // Topology tables: scanned with page-scale reuse; two
            // concurrent readers keep several huge pages live so Lite sees
            // real utility in the L1-2MB TLB (Table 5: omnetpp stays 4-way).
            StreamSpec {
                region: 1,
                pattern: Pattern::HotspotBurst {
                    hot_fraction: 0.016,
                    hot_prob: 0.93,
                    burst: 8,
                    burst_stride: 256,
                },
                region_switch_prob: 0.15,
            },
            StreamSpec {
                region: 1,
                pattern: Pattern::HotspotBurst {
                    hot_fraction: 0.016,
                    hot_prob: 0.93,
                    burst: 6,
                    burst_stride: 320,
                },
                region_switch_prob: 0.15,
            },
        ],
        phases: vec![PhaseSpec {
            duration_units: 1,
            weights: vec![(0, 0.68), (1, 0.17), (2, 0.15)],
        }],
        phase_unit_instructions: PHASE_UNIT,
        alloc_contiguity: 1.0,
    }
}

/// zeusmp (Spec2006, 530 MB): computational fluid dynamics on a regular
/// grid — sequential sweeps over a handful of large arrays.
fn zeusmp() -> WorkloadSpec {
    WorkloadSpec {
        name: "zeusmp",
        mem_ops_per_kilo_instr: 360,
        store_fraction: 0.4,
        regions: vec![
            RegionSpec {
                name: "fields",
                bytes: 125 * MB,
                count: 4,
                thp_eligible: true,
            },
            RegionSpec {
                name: "control",
                bytes: 24 * MB,
                count: 1,
                thp_eligible: false,
            },
        ],
        streams: vec![
            StreamSpec {
                region: 0,
                pattern: Pattern::Stream { stride: 168 },
                region_switch_prob: 0.002,
            },
            StreamSpec {
                region: 1,
                pattern: Pattern::HotspotBurst {
                    hot_fraction: 0.001,
                    hot_prob: 0.995,
                    burst: 4,
                    burst_stride: 64,
                },
                region_switch_prob: 0.0,
            },
            // A second concurrent sweep (flux vs. field arrays) keeps more
            // than one huge page warm in the L1-2MB TLB.
            StreamSpec {
                region: 0,
                pattern: Pattern::Stream { stride: 344 },
                region_switch_prob: 0.004,
            },
        ],
        phases: vec![
            PhaseSpec {
                duration_units: 2,
                weights: vec![(0, 0.42), (2, 0.20), (1, 0.38)],
            },
            PhaseSpec {
                duration_units: 1,
                weights: vec![(0, 0.50), (2, 0.22), (1, 0.28)],
            },
        ],
        phase_unit_instructions: PHASE_UNIT,
        alloc_contiguity: 1.0,
    }
}

/// mummer (BioBench, 470 MB): genome alignment — a suffix tree of small
/// node allocations dominates, with occasional long reference-genome scans.
fn mummer() -> WorkloadSpec {
    WorkloadSpec {
        name: "mummer",
        mem_ops_per_kilo_instr: 330,
        store_fraction: 0.2,
        regions: vec![
            RegionSpec {
                name: "suffix-tree",
                bytes: 28 * MB,
                count: 12,
                thp_eligible: false,
            },
            RegionSpec {
                name: "genome",
                bytes: 32 * MB,
                count: 4,
                thp_eligible: true,
            },
        ],
        streams: vec![
            // Tree descents: each match walks a few dozen node pages of one
            // arena — too spread for the page TLBs, but a single range
            // translation covers the whole arena (Table 5: 94.2% range
            // hits under RMM_Lite).
            StreamSpec {
                region: 0,
                pattern: Pattern::HotspotBurst {
                    hot_fraction: 0.004,
                    hot_prob: 0.97,
                    burst: 5,
                    burst_stride: 64,
                },
                region_switch_prob: 0.06,
            },
            // Tree roots: the top levels live in a handful of super-hot
            // pages (the small 4 KiB-TLB hit share of Table 5).
            StreamSpec {
                region: 0,
                pattern: Pattern::HotspotBurst {
                    hot_fraction: 0.00015,
                    hot_prob: 0.995,
                    burst: 4,
                    burst_stride: 64,
                },
                region_switch_prob: 0.10,
            },
            // Genome hot windows: match anchors in a few distinct regions.
            StreamSpec {
                region: 1, // stream 2
                pattern: Pattern::HotspotBurst {
                    hot_fraction: 0.008,
                    hot_prob: 0.95,
                    burst: 8,
                    burst_stride: 520,
                },
                region_switch_prob: 0.15,
            },
            // Plus a thin streaming pass over fresh genome (page walks
            // with 4 KiB pages, L2-TLB reach under THP).
            StreamSpec {
                region: 1,
                pattern: Pattern::Stream { stride: 2080 },
                region_switch_prob: 0.02,
            },
        ],
        phases: vec![
            PhaseSpec {
                duration_units: 3,
                weights: vec![(0, 0.52), (1, 0.38), (2, 0.07), (3, 0.03)],
            },
            PhaseSpec {
                duration_units: 1,
                weights: vec![(0, 0.46), (1, 0.34), (2, 0.14), (3, 0.06)],
            },
        ],
        phase_unit_instructions: PHASE_UNIT,
        alloc_contiguity: 1.0,
    }
}

/// canneal (Parsec, 780 MB): simulated annealing over a netlist — random
/// element swaps across a big fragmented heap that THP cannot back.
fn canneal() -> WorkloadSpec {
    WorkloadSpec {
        name: "canneal",
        mem_ops_per_kilo_instr: 370,
        store_fraction: 0.3,
        regions: vec![
            RegionSpec {
                name: "netlist",
                bytes: 62 * MB,
                count: 12,
                thp_eligible: false,
            },
            RegionSpec {
                name: "temp-arrays",
                bytes: 9 * MB,
                count: 8,
                thp_eligible: true,
            },
        ],
        streams: vec![
            // Element picks: hot heads of the arenas (≈ 1.5 MiB across the
            // twelve arenas — inside the L2 TLB's 4 KiB reach but far above
            // the 64-entry L1's) plus rare uniform swaps that walk.
            StreamSpec {
                region: 0,
                pattern: Pattern::HotspotBurst {
                    hot_fraction: 0.001,
                    hot_prob: 0.997,
                    burst: 4,
                    burst_stride: 64,
                },
                region_switch_prob: 0.35,
            },
            StreamSpec {
                region: 1,
                pattern: Pattern::HotspotBurst {
                    hot_fraction: 0.5,
                    hot_prob: 0.95,
                    burst: 16,
                    burst_stride: 136,
                },
                region_switch_prob: 0.3,
            },
        ],
        phases: vec![PhaseSpec {
            duration_units: 1,
            weights: vec![(0, 0.92), (1, 0.08)],
        }],
        phase_unit_instructions: PHASE_UNIT,
        alloc_contiguity: 1.0,
    }
}

/// Template parameters for the non-TLB-intensive workloads of Figure 12.
struct Light {
    name: &'static str,
    /// Total footprint, MiB (rough public figures for the reference inputs).
    mb: u64,
    /// Number of allocation requests the footprint is spread over.
    vmas: u32,
    /// Fraction of the footprint in THP-eligible regions.
    thp_share: f64,
    /// Fraction of accesses that leave the hot working set — tuned so these
    /// workloads stay under ~5 L1 MPKI with 4 KiB pages.
    intensity: f64,
}

/// Builds a low-TLB-pressure workload: a dominant cache-resident hot set
/// with occasional excursions over the full footprint.
fn light(p: Light) -> WorkloadSpec {
    let eligible_mb = ((p.mb as f64 * p.thp_share) as u64).max(1);
    let heap_mb = (p.mb - eligible_mb).max(1);
    let heap_vmas = (p.vmas.saturating_sub(2)).max(1);
    let array_bytes = (eligible_mb * MB / 2).max(MB);
    let heap_bytes = (heap_mb * MB / u64::from(heap_vmas)).max(64 << 10);
    // Hot sets stay within the L1 reach regardless of footprint — these
    // workloads are light *because* their working sets are cache-resident.
    let array_hot = ((48u64 << 10) as f64 / array_bytes as f64).min(0.04);
    let heap_hot = ((24u64 << 10) as f64 / heap_bytes as f64).min(0.02);
    WorkloadSpec {
        name: p.name,
        mem_ops_per_kilo_instr: 310,
        store_fraction: 0.3,
        regions: vec![
            RegionSpec {
                name: "arrays",
                bytes: array_bytes,
                count: 2,
                thp_eligible: true,
            },
            RegionSpec {
                name: "heap",
                bytes: heap_bytes,
                count: heap_vmas,
                thp_eligible: false,
            },
        ],
        streams: vec![
            // The array stream: page-friendly scans with a cold fraction set
            // by the intensity knob.
            StreamSpec {
                region: 0,
                pattern: Pattern::HotspotBurst {
                    hot_fraction: array_hot,
                    hot_prob: 1.0 - p.intensity * 3.0,
                    burst: 16,
                    burst_stride: 96,
                },
                region_switch_prob: 0.01,
            },
            // The heap stream: tightly hot, rare cold touches.
            StreamSpec {
                region: 1,
                pattern: Pattern::HotspotBurst {
                    hot_fraction: heap_hot,
                    hot_prob: 1.0 - p.intensity * 2.0,
                    burst: 8,
                    burst_stride: 64,
                },
                region_switch_prob: 0.05,
            },
        ],
        phases: vec![
            PhaseSpec {
                duration_units: 2,
                weights: vec![(0, 0.5), (1, 0.5)],
            },
            PhaseSpec {
                duration_units: 1,
                weights: vec![(0, 0.25), (1, 0.75)],
            },
        ],
        phase_unit_instructions: PHASE_UNIT,
        alloc_contiguity: 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_spec_validates() {
        for w in Workload::all() {
            let spec = w.spec();
            spec.validate().unwrap_or_else(|e| panic!("{w}: {e}"));
        }
    }

    #[test]
    fn catalog_counts() {
        assert_eq!(Workload::TLB_INTENSIVE.len(), 8);
        assert_eq!(Workload::OTHER_SPEC.len(), 23);
        assert_eq!(Workload::OTHER_PARSEC.len(), 12);
        assert_eq!(Workload::all().len(), 43);
    }

    #[test]
    fn footprints_match_table4_roughly() {
        // Table 4: astar 350 MB, cactusADM 690, GemsFDTD 860, mcf 1.7 GB,
        // omnetpp 165, zeusmp 530, canneal 780, mummer 470. Models must be
        // within ±25%.
        let targets: &[(Workload, u64)] = &[
            (Workload::Astar, 350),
            (Workload::CactusADM, 690),
            (Workload::GemsFDTD, 860),
            (Workload::Mcf, 1700),
            (Workload::Omnetpp, 165),
            (Workload::Zeusmp, 530),
            (Workload::Mummer, 470),
            (Workload::Canneal, 780),
        ];
        for &(w, target_mb) in targets {
            let got_mb = w.spec().footprint_bytes() as f64 / MB as f64;
            let err = (got_mb - target_mb as f64).abs() / target_mb as f64;
            assert!(err < 0.25, "{w}: {got_mb:.0} MB vs Table 4 {target_mb} MB");
        }
    }

    #[test]
    fn names_unique_and_lookup_works() {
        let mut names: Vec<&str> = Workload::all().iter().map(|w| w.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);

        assert_eq!(Workload::by_name("mcf"), Some(Workload::Mcf));
        assert_eq!(Workload::by_name("CACTUSADM"), Some(Workload::CactusADM));
        assert_eq!(Workload::by_name("nonesuch"), None);
    }

    #[test]
    fn suites_assigned() {
        assert_eq!(Workload::Mummer.suite(), Suite::BioBench);
        assert_eq!(Workload::Canneal.suite(), Suite::Parsec);
        assert_eq!(Workload::Mcf.suite(), Suite::Spec2006);
        assert_eq!(Workload::Dedup.suite(), Suite::Parsec);
        assert_eq!(Suite::BioBench.to_string(), "BioBench");
    }

    #[test]
    fn intensive_workloads_have_phases_where_paper_shows_them() {
        // Figure 4 shows phased MPKI for astar, GemsFDTD, and mcf.
        for w in [Workload::Astar, Workload::GemsFDTD, Workload::Mcf] {
            assert!(w.spec().phases.len() > 1, "{w} should be phased");
        }
    }

    #[test]
    fn canneal_and_omnetpp_are_fragmented() {
        // The workloads whose L1 hits stay in the 4 KiB TLB under THP must
        // hold most of their footprint in THP-ineligible regions.
        for w in [Workload::Canneal, Workload::Omnetpp, Workload::Mummer] {
            let spec = w.spec();
            let ineligible: u64 = spec
                .regions
                .iter()
                .filter(|r| !r.thp_eligible)
                .map(|r| r.bytes * u64::from(r.count))
                .sum();
            assert!(
                ineligible * 2 >= spec.footprint_bytes(),
                "{w}: fragmented share too small"
            );
        }
    }
}
