//! Deterministic synthetic workload models.
//!
//! The paper drives its simulator with Pin traces of Spec2006, BioBench and
//! Parsec programs (50 G instructions after a 50 G fast-forward). Pin and
//! the benchmark binaries are unavailable here, so this crate rebuilds each
//! workload as a *behavioural model*: a set of memory regions (arenas,
//! arrays, stacks) plus weighted access streams (sequential scans, strides,
//! hotspots, pointer chases) that switch with program phases.
//!
//! The models are tuned to reproduce the TLB-relevant properties the paper
//! reports, not the programs' computation:
//!
//! * footprint (Table 4) and the L1/L2 TLB MPKI regime under 4 KiB pages
//!   (Figure 11 — what makes a workload "TLB intensive"),
//! * the split of L1 hits between the 4 KiB and 2 MiB TLBs under THP and
//!   between the 4 KiB and range TLBs under RMM_Lite (Table 5), driven by
//!   how much of the footprint sits in THP-eligible regions and across how
//!   many allocation requests it is spread,
//! * phase behaviour over time (Figure 4).
//!
//! Everything is seeded and deterministic: the same `(workload, seed)` pair
//! yields the same trace on every run.
//!
//! # Examples
//!
//! ```
//! use eeat_workloads::{TraceGenerator, Workload};
//! use eeat_types::VirtRange;
//!
//! let spec = Workload::Mcf.spec();
//! // Lay the regions out somewhere (normally the OS model does this).
//! let mut at = 0x1_0000_0000u64;
//! let regions: Vec<Vec<VirtRange>> = spec
//!     .regions
//!     .iter()
//!     .map(|r| {
//!         (0..r.count)
//!             .map(|_| {
//!                 let range = VirtRange::new(eeat_types::VirtAddr::new(at), r.bytes);
//!                 at += r.bytes + (2 << 20);
//!                 range
//!             })
//!             .collect()
//!     })
//!     .collect();
//! let mut gen = TraceGenerator::new(&spec, regions, 42);
//! let access = gen.next_access();
//! assert!(access.instructions() >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
mod pattern;
mod spec;
mod trace;
pub mod trace_file;

pub use catalog::{Suite, Workload};
pub use pattern::Pattern;
pub use spec::{PhaseSpec, RegionSpec, SpecError, StreamSpec, WorkloadSpec};
pub use trace::TraceGenerator;
