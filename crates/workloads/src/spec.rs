//! Declarative workload specifications.

use core::fmt;

use crate::pattern::Pattern;

/// One class of memory regions a workload allocates.
///
/// `count > 1` creates that many separate allocation requests (VMAs) of
/// `bytes` each — how a workload spreads its footprint across requests
/// determines how many range translations eager paging creates, and thereby
/// the hit ratio of the 4-entry L1-range TLB (Table 5).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegionSpec {
    /// Region label (for reports).
    pub name: &'static str,
    /// Bytes per region instance.
    pub bytes: u64,
    /// Number of instances (separate VMAs).
    pub count: u32,
    /// Whether transparent huge pages can back these regions (large, densely
    /// used arrays: yes; fragmented small-object heaps: no).
    pub thp_eligible: bool,
}

/// One access stream: a pattern applied to the instances of one region.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamSpec {
    /// Index into [`WorkloadSpec::regions`].
    pub region: usize,
    /// The pattern applied within the selected region instance.
    pub pattern: Pattern,
    /// Per-access probability of jumping to a different region instance
    /// (0 = stay forever on one instance; higher values spread accesses
    /// across the VMAs of the region class). Irrelevant when `count == 1`.
    pub region_switch_prob: f64,
}

/// One program phase: relative duration and the mix of active streams.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseSpec {
    /// Duration in units of [`WorkloadSpec::phase_unit_instructions`].
    pub duration_units: u32,
    /// `(stream index, weight)` pairs; weights are normalized per phase.
    pub weights: Vec<(usize, f64)>,
}

/// A complete synthetic workload description.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadSpec {
    /// Workload name as the paper spells it (e.g. `"cactusADM"`).
    pub name: &'static str,
    /// Memory operations per 1000 instructions (sets the MPKI denominator;
    /// typical compute codes run 250–450).
    pub mem_ops_per_kilo_instr: u32,
    /// Fraction of memory operations that are stores.
    pub store_fraction: f64,
    /// The memory regions allocated at startup.
    pub regions: Vec<RegionSpec>,
    /// The access streams.
    pub streams: Vec<StreamSpec>,
    /// The phase schedule, cycled for the whole run.
    pub phases: Vec<PhaseSpec>,
    /// Instructions per phase duration unit.
    pub phase_unit_instructions: u64,
    /// Probability that a 4 KiB allocation continues the physically
    /// contiguous frame run of its predecessor (1.0 = perfectly contiguous
    /// demand paging, the default; lower values fragment physical memory
    /// and shrink the runs a coalesced TLB can cover).
    pub alloc_contiguity: f64,
}

/// Validation errors for a [`WorkloadSpec`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError(String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid workload spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

impl WorkloadSpec {
    /// Total footprint across all regions, bytes (Table 4's "Memory").
    pub fn footprint_bytes(&self) -> u64 {
        self.regions
            .iter()
            .map(|r| r.bytes * u64::from(r.count))
            .sum()
    }

    /// Total number of allocation requests (VMAs, and under eager paging,
    /// range translations).
    pub fn vma_count(&self) -> u32 {
        self.regions.iter().map(|r| r.count).sum()
    }

    /// Mean instructions per memory operation.
    pub fn mean_gap(&self) -> f64 {
        1000.0 / f64::from(self.mem_ops_per_kilo_instr)
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] describing the first problem found: empty
    /// region/stream/phase lists, out-of-range indices, invalid pattern
    /// parameters, zero sizes, or non-positive phase weights.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.regions.is_empty() {
            return Err(SpecError("no regions".into()));
        }
        if self.streams.is_empty() {
            return Err(SpecError("no streams".into()));
        }
        if self.phases.is_empty() {
            return Err(SpecError("no phases".into()));
        }
        if self.mem_ops_per_kilo_instr == 0 || self.mem_ops_per_kilo_instr > 1000 {
            return Err(SpecError(format!(
                "mem_ops_per_kilo_instr {} out of (0, 1000]",
                self.mem_ops_per_kilo_instr
            )));
        }
        if !(0.0..=1.0).contains(&self.store_fraction) {
            return Err(SpecError("store_fraction out of [0, 1]".into()));
        }
        if !(0.0..=1.0).contains(&self.alloc_contiguity) {
            return Err(SpecError("alloc_contiguity out of [0, 1]".into()));
        }
        if self.phase_unit_instructions == 0 {
            return Err(SpecError("phase_unit_instructions must be non-zero".into()));
        }
        for (i, r) in self.regions.iter().enumerate() {
            if r.bytes == 0 {
                return Err(SpecError(format!("region {i} ({}) has zero size", r.name)));
            }
            if r.count == 0 {
                return Err(SpecError(format!("region {i} ({}) has zero count", r.name)));
            }
        }
        for (i, s) in self.streams.iter().enumerate() {
            if s.region >= self.regions.len() {
                return Err(SpecError(format!(
                    "stream {i} names missing region {}",
                    s.region
                )));
            }
            if !(0.0..=1.0).contains(&s.region_switch_prob) {
                return Err(SpecError(format!("stream {i} switch prob out of [0, 1]")));
            }
            s.pattern
                .validate()
                .map_err(|e| SpecError(format!("stream {i}: {e}")))?;
        }
        for (i, p) in self.phases.iter().enumerate() {
            if p.duration_units == 0 {
                return Err(SpecError(format!("phase {i} has zero duration")));
            }
            if p.weights.is_empty() {
                return Err(SpecError(format!("phase {i} has no active streams")));
            }
            for &(s, w) in &p.weights {
                if s >= self.streams.len() {
                    return Err(SpecError(format!("phase {i} names missing stream {s}")));
                }
                if w <= 0.0 || w.is_nan() {
                    return Err(SpecError(format!("phase {i} has non-positive weight {w}")));
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} MiB across {} VMAs, {} streams, {} phases",
            self.name,
            self.footprint_bytes() >> 20,
            self.vma_count(),
            self.streams.len(),
            self.phases.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> WorkloadSpec {
        WorkloadSpec {
            name: "test",
            mem_ops_per_kilo_instr: 300,
            store_fraction: 0.3,
            regions: vec![RegionSpec {
                name: "heap",
                bytes: 1 << 20,
                count: 2,
                thp_eligible: true,
            }],
            streams: vec![StreamSpec {
                region: 0,
                pattern: Pattern::Random,
                region_switch_prob: 0.1,
            }],
            phases: vec![PhaseSpec {
                duration_units: 1,
                weights: vec![(0, 1.0)],
            }],
            phase_unit_instructions: 1_000_000,
            alloc_contiguity: 1.0,
        }
    }

    #[test]
    fn minimal_is_valid() {
        minimal().validate().unwrap();
        assert_eq!(minimal().footprint_bytes(), 2 << 20);
        assert_eq!(minimal().vma_count(), 2);
        assert!((minimal().mean_gap() - 10.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_structural_problems() {
        let mut s = minimal();
        s.regions.clear();
        assert!(s.validate().is_err());

        let mut s = minimal();
        s.streams[0].region = 5;
        assert!(s.validate().is_err());

        let mut s = minimal();
        s.phases[0].weights[0] = (3, 1.0);
        assert!(s.validate().is_err());

        let mut s = minimal();
        s.phases[0].weights[0] = (0, 0.0);
        assert!(s.validate().is_err());

        let mut s = minimal();
        s.regions[0].bytes = 0;
        assert!(s.validate().is_err());

        let mut s = minimal();
        s.mem_ops_per_kilo_instr = 0;
        assert!(s.validate().is_err());

        let mut s = minimal();
        s.store_fraction = 1.5;
        assert!(s.validate().is_err());

        let mut s = minimal();
        s.alloc_contiguity = -0.1;
        assert!(s.validate().is_err());

        let mut s = minimal();
        s.streams[0].pattern = Pattern::Stream { stride: 0 };
        assert!(s.validate().is_err());

        let mut s = minimal();
        s.phases[0].duration_units = 0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn error_and_display() {
        let mut s = minimal();
        s.phases.clear();
        let err = s.validate().unwrap_err();
        assert!(err.to_string().contains("no phases"));
        assert!(minimal().to_string().contains("2 MiB across 2 VMAs"));
    }
}
