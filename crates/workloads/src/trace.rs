//! Turning a workload spec into a concrete memory-access trace.

use eeat_types::rng::{RngCore, RngExt, SeedableRng, SmallRng};
use eeat_types::{AccessKind, MemAccess, VirtAddr, VirtRange};

use crate::pattern::{Cursor, ProbDraw, RegionLen};
use crate::spec::WorkloadSpec;

/// One region instance precomputed for the hot loop: its base address and
/// its length with the division reciprocal `PointerChase` wraps with —
/// derived once from the allocated [`VirtRange`]s at construction instead
/// of per access.
#[derive(Clone, Copy, Debug)]
struct RegionSlot {
    start: u64,
    len: RegionLen,
}

/// One stream's spec fields and runtime state, fused so the hot loop
/// resolves a stream with a single indexed load.
#[derive(Clone, Debug)]
struct StreamState {
    /// Start of the stream's region class in the flat range table, so
    /// resolving an instance is one indexed load (`regions[base + i]`).
    region_base: usize,
    /// The stream's access pattern.
    pattern: crate::Pattern,
    /// Compiled per-access probability of hopping to another region
    /// instance.
    switch_draw: ProbDraw,
    /// Instance count of the region class (cached from the spec).
    instances: usize,
    /// Which region instance the stream currently works in.
    current_instance: usize,
    /// One cursor per region instance (streams resume where they left off).
    cursors: Vec<Cursor>,
}

/// One phase, preprocessed for fast sampling.
#[derive(Clone, Debug)]
struct PhaseState {
    /// Length of the phase in instructions.
    instructions: u64,
    /// Active streams with integer draw thresholds: entry `(s, t)` selects
    /// stream `s` for 53-bit draws below `t` (and at or above the previous
    /// entry's threshold). Compiled from the cumulative `f64` weights so
    /// the per-access pick compares in `u64` — see [`pick_threshold`].
    picks: Vec<(usize, u64)>,
}

/// Compiles one cumulative-weight boundary into a 53-bit draw threshold:
/// the smallest draw `x` for which the weighted sample
/// `(x as f64 * 2^-53) * total` reaches `acc`.
///
/// The sampled value is a single-rounded monotone function of `x`, so the
/// f64 predicate `sample < acc` holds exactly for `x < pick_threshold(acc,
/// total)` — the binary search evaluates the identical expression the f64
/// path would, making the integer pick draw-for-draw equivalent.
fn pick_threshold(acc: f64, total: f64) -> u64 {
    let scale = 1.0 / (1u64 << 53) as f64;
    let (mut lo, mut hi) = (0u64, 1u64 << 53);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if (mid as f64 * scale) * total < acc {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// A deterministic generator of [`MemAccess`]es for one workload.
///
/// Construction binds the abstract region classes of the spec to the
/// concrete [`VirtRange`]s the OS model allocated for them; iteration then
/// follows the phase schedule, picking a stream per access by phase weight
/// and advancing that stream's pattern.
///
/// The generator is infinite — callers decide how many instructions to
/// simulate (the paper runs 50 G after a 50 G fast-forward; the experiment
/// harness scales this down).
#[derive(Clone, Debug)]
pub struct TraceGenerator {
    /// All region instances flattened in spec order; each stream holds the
    /// start index of its class (see [`StreamState::region_base`]).
    regions: Vec<RegionSlot>,
    streams: Vec<StreamState>,
    phases: Vec<PhaseState>,
    phase_idx: usize,
    /// Instruction budget of the current phase (cached from
    /// `phases[phase_idx]` so the per-access schedule check is load-free).
    phase_budget: u64,
    instructions_in_phase: u64,
    store_draw: ProbDraw,
    /// Mean instructions per access, dithered to an integer per access.
    mean_gap: f64,
    gap_carry: f64,
    instructions: u64,
    rng: SmallRng,
}

impl TraceGenerator {
    /// Creates a generator for `spec` over the allocated `regions`
    /// (one `Vec<VirtRange>` per region class, with `count` entries each).
    ///
    /// # Panics
    ///
    /// Panics when the spec is invalid or `regions` does not match the
    /// spec's region classes (wrong class count, instance count, or sizes
    /// smaller than the spec requests).
    pub fn new(spec: &WorkloadSpec, regions: Vec<Vec<VirtRange>>, seed: u64) -> Self {
        spec.validate().expect("workload spec must validate");
        assert_eq!(
            regions.len(),
            spec.regions.len(),
            "one range list per region class"
        );
        for (class, (rspec, ranges)) in spec.regions.iter().zip(&regions).enumerate() {
            assert_eq!(
                ranges.len(),
                rspec.count as usize,
                "region class {class} instance count mismatch"
            );
            for r in ranges {
                assert!(
                    r.len() >= rspec.bytes,
                    "region class {class} instance smaller than spec"
                );
            }
        }

        let mut region_starts = Vec::with_capacity(regions.len());
        let mut next = 0usize;
        for ranges in &regions {
            region_starts.push(next);
            next += ranges.len();
        }

        let streams = spec
            .streams
            .iter()
            .map(|s| StreamState {
                region_base: region_starts[s.region],
                pattern: s.pattern,
                switch_draw: ProbDraw::new(s.region_switch_prob),
                instances: spec.regions[s.region].count as usize,
                current_instance: 0,
                cursors: vec![Cursor::default(); spec.regions[s.region].count as usize],
            })
            .collect();

        let phases: Vec<PhaseState> = spec
            .phases
            .iter()
            .map(|p| {
                let total: f64 = p.weights.iter().map(|&(_, w)| w).sum();
                let mut acc = 0.0;
                let picks = p
                    .weights
                    .iter()
                    .map(|&(stream, w)| {
                        acc += w;
                        (stream, pick_threshold(acc, total))
                    })
                    .collect();
                PhaseState {
                    instructions: u64::from(p.duration_units) * spec.phase_unit_instructions,
                    picks,
                }
            })
            .collect();

        let phase_budget = phases[0].instructions;
        Self {
            regions: regions
                .into_iter()
                .flatten()
                .map(|r| RegionSlot {
                    start: r.start().raw(),
                    len: RegionLen::new(r.len()),
                })
                .collect(),
            streams,
            phases,
            phase_idx: 0,
            phase_budget,
            instructions_in_phase: 0,
            store_draw: ProbDraw::new(spec.store_fraction),
            mean_gap: spec.mean_gap(),
            gap_carry: 0.0,
            instructions: 0,
            rng: SmallRng::seed_from_u64(seed ^ 0x7ace_57a7_e5ee_d000),
        }
    }

    /// Total instructions generated so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Index of the current phase in the spec's schedule.
    pub fn current_phase(&self) -> usize {
        self.phase_idx
    }

    /// Generates the next memory access.
    ///
    /// Single-access twin of [`fill`](Self::fill); both feed off the same
    /// generation routine, so interleaving the two APIs (or draining the
    /// [`Iterator`] adapter) produces the identical access stream.
    #[inline]
    pub fn next_access(&mut self) -> MemAccess {
        self.generate()
    }

    /// Fills `buf` with the next `buf.len()` accesses and returns how many
    /// were written — always `buf.len()`, since the generator is infinite.
    /// (The `usize` return keeps the contract open for future finite
    /// sources, e.g. file-backed traces.)
    ///
    /// This is the block-mode entry point of the hot loop: callers own and
    /// reuse the buffer, so steady-state generation allocates nothing, and
    /// the per-access dispatch through the [`Iterator`] adapter is amortized
    /// over the whole block.
    pub fn fill(&mut self, buf: &mut [MemAccess]) -> usize {
        for slot in buf.iter_mut() {
            *slot = self.generate();
        }
        buf.len()
    }

    /// The one true generation routine behind [`next_access`](Self::next_access),
    /// [`fill`](Self::fill), and the [`Iterator`] impl. The RNG draw sequence
    /// here is load-bearing: any reordering changes every downstream golden
    /// fixture.
    #[inline]
    fn generate(&mut self) -> MemAccess {
        // Dither the instruction gap so the long-run mean matches the spec.
        // `as u32` truncates like `floor` for the positive gaps drawn here
        // (and saturates identically otherwise) without the libm call the
        // baseline x86-64 target emits for `f64::floor`.
        let want = self.mean_gap + self.gap_carry;
        let gap = (want as u32).max(1);
        self.gap_carry = want - f64::from(gap);

        // Advance the phase schedule.
        self.instructions += u64::from(gap);
        self.instructions_in_phase += u64::from(gap);
        while self.instructions_in_phase >= self.phase_budget {
            self.instructions_in_phase -= self.phase_budget;
            self.phase_idx = (self.phase_idx + 1) % self.phases.len();
            self.phase_budget = self.phases[self.phase_idx].instructions;
        }

        // Pick a stream by phase weight (integer draw against the compiled
        // cumulative thresholds; single-stream phases consume no draw).
        let phase = &self.phases[self.phase_idx];
        let stream_idx = if phase.picks.len() == 1 {
            phase.picks[0].0
        } else {
            let draw = self.rng.next_u64() >> 11;
            phase
                .picks
                .iter()
                .find(|&&(_, thr)| draw < thr)
                .map(|&(s, _)| s)
                .unwrap_or(phase.picks[phase.picks.len() - 1].0)
        };

        // Possibly migrate the stream to another region instance.
        let state = &mut self.streams[stream_idx];
        if state.instances > 1 && state.switch_draw.draw(&mut self.rng) {
            state.current_instance = self.rng.random_range(0..state.instances);
        }
        let instance = state.current_instance;
        let region = self.regions[state.region_base + instance];

        // Advance the pattern within the instance.
        let offset =
            state
                .pattern
                .next_offset(region.len, &mut state.cursors[instance], &mut self.rng);
        let vaddr = VirtAddr::new(region.start + offset);

        let kind = if self.store_draw.draw(&mut self.rng) {
            AccessKind::Store
        } else {
            AccessKind::Load
        };
        MemAccess::new(vaddr, kind, gap)
    }
}

impl Iterator for TraceGenerator {
    type Item = MemAccess;

    /// Thin adapter over [`TraceGenerator::next_access`]; never `None`.
    #[inline]
    fn next(&mut self) -> Option<MemAccess> {
        Some(self.next_access())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{PhaseSpec, RegionSpec, StreamSpec};
    use crate::Pattern;

    fn layout(spec: &WorkloadSpec) -> Vec<Vec<VirtRange>> {
        let mut at = 0x10_0000_0000u64;
        spec.regions
            .iter()
            .map(|r| {
                (0..r.count)
                    .map(|_| {
                        let range = VirtRange::new(VirtAddr::new(at), r.bytes);
                        at += r.bytes + (2 << 20);
                        range
                    })
                    .collect()
            })
            .collect()
    }

    fn two_phase_spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "two-phase",
            mem_ops_per_kilo_instr: 250,
            store_fraction: 0.25,
            regions: vec![
                RegionSpec {
                    name: "a",
                    bytes: 1 << 20,
                    count: 1,
                    thp_eligible: true,
                },
                RegionSpec {
                    name: "b",
                    bytes: 4 << 20,
                    count: 4,
                    thp_eligible: false,
                },
            ],
            streams: vec![
                StreamSpec {
                    region: 0,
                    pattern: Pattern::Stream { stride: 64 },
                    region_switch_prob: 0.0,
                },
                StreamSpec {
                    region: 1,
                    pattern: Pattern::Random,
                    region_switch_prob: 0.05,
                },
            ],
            phases: vec![
                PhaseSpec {
                    duration_units: 2,
                    weights: vec![(0, 1.0)],
                },
                PhaseSpec {
                    duration_units: 1,
                    weights: vec![(0, 0.2), (1, 0.8)],
                },
            ],
            phase_unit_instructions: 10_000,
            alloc_contiguity: 1.0,
        }
    }

    #[test]
    fn fill_matches_per_access_stream() {
        let spec = two_phase_spec();
        let mut by_one = TraceGenerator::new(&spec, layout(&spec), 3);
        let mut by_block = TraceGenerator::new(&spec, layout(&spec), 3);
        let mut buf = vec![MemAccess::new(VirtAddr::new(0), AccessKind::Load, 1); 97];
        let mut block_stream = Vec::new();
        while block_stream.len() < 500 {
            let n = by_block.fill(&mut buf);
            assert_eq!(n, buf.len(), "infinite generator always fills fully");
            block_stream.extend_from_slice(&buf[..n]);
        }
        for acc in &block_stream {
            assert_eq!(*acc, by_one.next_access());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = two_phase_spec();
        let a: Vec<MemAccess> = TraceGenerator::new(&spec, layout(&spec), 3)
            .take(500)
            .collect();
        let b: Vec<MemAccess> = TraceGenerator::new(&spec, layout(&spec), 3)
            .take(500)
            .collect();
        let c: Vec<MemAccess> = TraceGenerator::new(&spec, layout(&spec), 4)
            .take(500)
            .collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn addresses_stay_inside_regions() {
        let spec = two_phase_spec();
        let regions = layout(&spec);
        let all: Vec<VirtRange> = regions.iter().flatten().copied().collect();
        for acc in TraceGenerator::new(&spec, regions, 1).take(5_000) {
            assert!(
                all.iter().any(|r| r.contains(acc.vaddr())),
                "access {acc} outside all regions"
            );
        }
    }

    #[test]
    fn instruction_rate_matches_spec() {
        let spec = two_phase_spec();
        let mut generator = TraceGenerator::new(&spec, layout(&spec), 1);
        let n = 40_000;
        for _ in 0..n {
            generator.next_access();
        }
        let per_kilo = n as f64 / (generator.instructions() as f64 / 1000.0);
        let target = f64::from(spec.mem_ops_per_kilo_instr);
        assert!(
            (per_kilo - target).abs() / target < 0.02,
            "mem ops per kilo-instruction {per_kilo} vs target {target}"
        );
    }

    #[test]
    fn phases_cycle_with_schedule() {
        let spec = two_phase_spec();
        let mut generator = TraceGenerator::new(&spec, layout(&spec), 1);
        let mut seen = Vec::new();
        for _ in 0..30_000 {
            generator.next_access();
            if seen.last() != Some(&generator.current_phase()) {
                seen.push(generator.current_phase());
            }
        }
        // Phase 0 (2 units) then phase 1 (1 unit), cycling.
        assert!(seen.len() >= 3, "phases should cycle, saw {seen:?}");
        assert_eq!(seen[0], 0);
        assert_eq!(seen[1], 1);
        assert_eq!(seen[2], 0);
    }

    #[test]
    fn phase_weights_steer_streams() {
        let spec = two_phase_spec();
        let regions = layout(&spec);
        let region_a = regions[0][0];
        let mut generator = TraceGenerator::new(&spec, regions, 1);
        // Classify each access by the phase it was generated in (the phase
        // advances before the access is produced).
        let mut counts = [[0u64; 2]; 2]; // [phase][in region a?]
        for _ in 0..40_000 {
            let acc = generator.next_access();
            let phase = generator.current_phase();
            counts[phase][usize::from(region_a.contains(acc.vaddr()))] += 1;
        }
        // Phase 0: only stream 0 (region a).
        assert_eq!(counts[0][0], 0, "phase 0 only touches region a");
        assert!(counts[0][1] > 1_000);
        // Phase 1: ~20% stream 0.
        let total1 = counts[1][0] + counts[1][1];
        assert!(total1 > 1_000, "phase 1 reached");
        let frac = counts[1][1] as f64 / total1 as f64;
        assert!(
            (0.05..0.5).contains(&frac),
            "phase 1 ~20% in region a, got {frac}"
        );
    }

    #[test]
    fn store_fraction_roughly_respected() {
        let spec = two_phase_spec();
        let stores = TraceGenerator::new(&spec, layout(&spec), 9)
            .take(10_000)
            .filter(|a| a.kind() == AccessKind::Store)
            .count();
        let frac = stores as f64 / 10_000.0;
        assert!((0.2..0.3).contains(&frac), "store fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "instance count mismatch")]
    fn region_binding_checked() {
        let spec = two_phase_spec();
        let mut regions = layout(&spec);
        regions[1].pop();
        let _ = TraceGenerator::new(&spec, regions, 1);
    }
}
