//! Statistical tests of the workload generators: page-level access
//! characteristics each model must exhibit, measured directly on the
//! generated traces (no simulator involved).

use std::collections::{HashMap, HashSet};

use eeat_types::{MemAccess, VirtAddr, VirtRange};
use eeat_workloads::{TraceGenerator, Workload};

/// Lays the spec's regions out and returns (generator, regions).
fn generator(w: Workload, seed: u64) -> (TraceGenerator, Vec<Vec<VirtRange>>) {
    let spec = w.spec();
    let mut at = 0x100_0000_0000u64;
    let regions: Vec<Vec<VirtRange>> = spec
        .regions
        .iter()
        .map(|r| {
            (0..r.count)
                .map(|_| {
                    let range = VirtRange::new(VirtAddr::new(at), r.bytes);
                    // 2 MiB-aligned starts with a guard, like the OS model.
                    at = (at + r.bytes + (4 << 20)) & !((2u64 << 20) - 1);
                    range
                })
                .collect()
        })
        .collect();
    (TraceGenerator::new(&spec, regions.clone(), seed), regions)
}

fn sample(w: Workload, n: usize) -> Vec<MemAccess> {
    let (generator, _) = generator(w, 42);
    generator.take(n).collect()
}

/// Distinct 4 KiB pages touched per window of `window` accesses, averaged.
fn mean_page_working_set(accesses: &[MemAccess], window: usize) -> f64 {
    let mut totals = 0usize;
    let mut windows = 0usize;
    for chunk in accesses.chunks(window) {
        if chunk.len() < window {
            break;
        }
        let pages: HashSet<u64> = chunk.iter().map(|a| a.vaddr().raw() >> 12).collect();
        totals += pages.len();
        windows += 1;
    }
    totals as f64 / windows as f64
}

#[test]
fn page_reuse_distinguishes_streaming_from_chasing() {
    // cactusADM's dominant table stream re-uses few pages per window;
    // canneal's random element picks touch many more.
    let cactus = sample(Workload::CactusADM, 60_000);
    let canneal = sample(Workload::Canneal, 60_000);
    let cactus_ws = mean_page_working_set(&cactus, 1000);
    let canneal_ws = mean_page_working_set(&canneal, 1000);
    assert!(
        canneal_ws > 2.0 * cactus_ws,
        "canneal {canneal_ws:.0} pages/window vs cactusADM {cactus_ws:.0}"
    );
}

#[test]
fn mcf_touches_gigabytes_canneal_never_leaves_its_arenas() {
    let mcf = sample(Workload::Mcf, 120_000);
    let lo = mcf.iter().map(|a| a.vaddr().raw()).min().unwrap();
    let hi = mcf.iter().map(|a| a.vaddr().raw()).max().unwrap();
    assert!(hi - lo > 1 << 30, "mcf span {} MiB", (hi - lo) >> 20);
}

#[test]
fn accesses_respect_region_weights() {
    // omnetpp: about 68% of accesses go to the event heap (region class 0).
    let (generator, regions) = generator(Workload::Omnetpp, 7);
    let heap: Vec<VirtRange> = regions[0].clone();
    let total = 60_000;
    let in_heap = generator
        .take(total)
        .filter(|a| heap.iter().any(|r| r.contains(a.vaddr())))
        .count();
    let frac = in_heap as f64 / total as f64;
    assert!((0.6..0.76).contains(&frac), "heap fraction {frac:.2}");
}

#[test]
fn arena_hopping_rates_match_range_tlb_design() {
    // The per-access probability of switching arenas is the knob that sets
    // the L1-range TLB hit ratio; verify the realized rates are ordered:
    // omnetpp (rapid) >> mummer (sticky).
    let rate = |w: Workload, region_class: usize| {
        let (generator, regions) = generator(w, 3);
        let arenas = &regions[region_class];
        let mut last: Option<usize> = None;
        let mut switches = 0u64;
        let mut samples = 0u64;
        for a in generator.take(80_000) {
            if let Some(idx) = arenas.iter().position(|r| r.contains(a.vaddr())) {
                if let Some(prev) = last {
                    samples += 1;
                    if prev != idx {
                        switches += 1;
                    }
                }
                last = Some(idx);
            }
        }
        switches as f64 / samples as f64
    };
    // cactusADM's coefficient tables are served by a single sticky stream
    // (switch probability 0.12); omnetpp's event objects hop arenas on most
    // accesses. (Workloads with several streams over one region class, like
    // mummer, interleave streams and sit in between.)
    let omnetpp = rate(Workload::Omnetpp, 0);
    let cactus = rate(Workload::CactusADM, 1);
    assert!(
        omnetpp > 3.0 * cactus,
        "omnetpp hops {omnetpp:.3}, cactusADM tables {cactus:.3}"
    );
}

#[test]
fn store_fractions_are_plausible() {
    for w in [Workload::Mcf, Workload::GemsFDTD, Workload::Canneal] {
        let accesses = sample(w, 30_000);
        let stores = accesses
            .iter()
            .filter(|a| a.kind() == eeat_types::AccessKind::Store)
            .count();
        let frac = stores as f64 / accesses.len() as f64;
        let spec_frac = w.spec().store_fraction;
        assert!(
            (frac - spec_frac).abs() < 0.03,
            "{w}: stores {frac:.2} vs spec {spec_frac:.2}"
        );
    }
}

#[test]
fn hot_pages_concentrate_hits() {
    // Every TLB-intensive model must have a heavy-hitter page set: the top
    // 64 pages absorb a large share of accesses (that is what makes L1
    // TLBs worth having), while the total touched set is much larger.
    for &w in &Workload::TLB_INTENSIVE {
        let accesses = sample(w, 100_000);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for a in &accesses {
            *counts.entry(a.vaddr().raw() >> 12).or_default() += 1;
        }
        let mut by_count: Vec<u64> = counts.values().copied().collect();
        by_count.sort_unstable_by(|a, b| b.cmp(a));
        let top64: u64 = by_count.iter().take(64).sum();
        let share = top64 as f64 / accesses.len() as f64;
        assert!(
            share > 0.25,
            "{w}: top-64 pages absorb only {share:.2} of accesses"
        );
        assert!(
            counts.len() > 200,
            "{w}: touches only {} distinct pages",
            counts.len()
        );
    }
}

#[test]
fn traces_differ_across_workloads() {
    // No two models generate the same page stream (guards against
    // copy-paste profiles collapsing into identical behaviour).
    let mut signatures = Vec::new();
    for &w in &Workload::TLB_INTENSIVE {
        let pages: Vec<u64> = sample(w, 2_000)
            .iter()
            .map(|a| a.vaddr().raw() >> 12)
            .collect();
        signatures.push(pages);
    }
    for i in 0..signatures.len() {
        for j in i + 1..signatures.len() {
            assert_ne!(
                signatures[i], signatures[j],
                "workloads {i} and {j} identical"
            );
        }
    }
}
