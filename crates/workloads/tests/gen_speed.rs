//! Manual timing probe: how fast is trace generation alone?
//!
//! Run with:
//! `cargo test --release -p eeat-workloads --test gen_speed -- --ignored --nocapture`

use std::time::Instant;

use eeat_types::{AccessKind, MemAccess, VirtAddr, VirtRange};
use eeat_workloads::{TraceGenerator, Workload};

#[test]
#[ignore = "manual timing probe, not a correctness test"]
fn trace_generation_rate() {
    for workload in Workload::TLB_INTENSIVE {
        let spec = workload.spec();
        // Synthetic layout (timing only; addresses need not match the OS
        // model's placement).
        let mut at = 0x10_0000_0000u64;
        let regions: Vec<Vec<VirtRange>> = spec
            .regions
            .iter()
            .map(|r| {
                (0..r.count)
                    .map(|_| {
                        let range = VirtRange::new(VirtAddr::new(at), r.bytes);
                        at += r.bytes + (2 << 20);
                        range
                    })
                    .collect()
            })
            .collect();
        let mut generator = TraceGenerator::new(&spec, regions, 42);
        let mut buf = vec![MemAccess::new(VirtAddr::new(0), AccessKind::Load, 1); 1024];
        let total = 5_000_000u64;
        let t = Instant::now();
        let mut done = 0u64;
        let mut sink = 0u64;
        while done < total {
            generator.fill(&mut buf);
            done += buf.len() as u64;
            sink ^= buf[0].vaddr().raw();
        }
        let secs = t.elapsed().as_secs_f64();
        std::hint::black_box(sink);
        println!(
            "{:20} {:>12.0} acc/s  ({:.1} ns/access)",
            format!("{workload:?}"),
            done as f64 / secs,
            1e9 * secs / done as f64
        );
    }
}
