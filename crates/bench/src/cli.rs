//! The shared command-line runner behind every `src/bin/` driver.
//!
//! All ~16 figure/table binaries share the same knobs — instruction
//! budget, seed, worker threads, and which configurations/workloads to
//! simulate — so the flag parsing, set selection, and matrix running live
//! here once. Flags override the `EEAT_*` environment variables:
//!
//! ```text
//! fig10 --instructions 5_000_000 --seed 7 --threads 4 \
//!       --configs 4KB,THP,RMM_Lite --workloads mcf,astar
//! ```

use eeat_core::{Config, Experiment, WorkloadResults};
use eeat_workloads::Workload;

use crate::{instruction_budget, seed};

/// Parsed command-line options shared by every bench binary.
#[derive(Clone, Debug)]
pub struct Cli {
    /// Instructions simulated per (workload, config) cell.
    pub instructions: u64,
    /// Deterministic seed shared by OS layout and trace generation.
    pub seed: u64,
    /// Worker-thread cap for matrix fan-out (`None` = hardware threads).
    pub threads: Option<usize>,
    configs: Option<Vec<Config>>,
    workloads: Option<Vec<Workload>>,
}

impl Cli {
    /// Parses `std::env::args`, printing usage and exiting on `--help` or
    /// an unknown flag. `about` is the binary's one-line description.
    pub fn parse(about: &str) -> Self {
        let mut cli = Self {
            instructions: instruction_budget(),
            seed: seed(),
            threads: None,
            configs: None,
            workloads: None,
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let mut value = |flag: &str| {
                args.next().unwrap_or_else(|| {
                    eprintln!("{flag} needs a value");
                    std::process::exit(2);
                })
            };
            match arg.as_str() {
                "--help" | "-h" => {
                    print_usage(about);
                    std::process::exit(0);
                }
                "--instructions" | "-n" => {
                    cli.instructions = parse_count(&value("--instructions"));
                }
                "--seed" | "-s" => {
                    cli.seed = parse_count(&value("--seed"));
                }
                "--threads" | "-t" => {
                    cli.threads = Some(parse_count(&value("--threads")).max(1) as usize);
                }
                "--configs" | "-c" => {
                    cli.configs = Some(value("--configs").split(',').map(config_by_name).collect());
                }
                "--workloads" | "-w" => {
                    cli.workloads = Some(
                        value("--workloads")
                            .split(',')
                            .map(workload_by_name)
                            .collect(),
                    );
                }
                other => {
                    eprintln!("unknown flag `{other}`; try --help");
                    std::process::exit(2);
                }
            }
        }
        cli
    }

    /// An [`Experiment`] at this budget, seed, and thread cap.
    pub fn experiment(&self) -> Experiment {
        let exp = Experiment::new()
            .with_instructions(self.instructions)
            .with_seed(self.seed);
        match self.threads {
            Some(t) => exp.with_threads(t),
            None => exp,
        }
    }

    /// The configuration set: `--configs` when given, else `default`.
    pub fn configs(&self, default: &[Config]) -> Vec<Config> {
        self.configs.clone().unwrap_or_else(|| default.to_vec())
    }

    /// The workload set: `--workloads` when given, else `default`.
    pub fn workloads(&self, default: &[Workload]) -> Vec<Workload> {
        self.workloads.clone().unwrap_or_else(|| default.to_vec())
    }

    /// Runs the selected workloads × configurations (defaults applied per
    /// [`configs`](Self::configs)/[`workloads`](Self::workloads)) with a
    /// progress line, fanning the cells out over worker threads.
    pub fn run_matrix(
        &self,
        default_workloads: &[Workload],
        default_configs: &[Config],
    ) -> Vec<WorkloadResults> {
        let workloads = self.workloads(default_workloads);
        let configs = self.configs(default_configs);
        eprintln!(
            "running {} workloads x {} configs at {} instructions...",
            workloads.len(),
            configs.len(),
            self.instructions,
        );
        self.experiment().run_matrix(&workloads, &configs)
    }
}

fn print_usage(about: &str) {
    println!("{about}");
    println!();
    println!("Options (flags override EEAT_INSTRUCTIONS / EEAT_SEED / EEAT_THREADS):");
    println!("  -n, --instructions N   instructions per run (default 20M; underscores ok)");
    println!("  -s, --seed N           deterministic seed (default 42)");
    println!("  -t, --threads N        worker threads for the matrix (default: all cores)");
    println!("  -c, --configs A,B      configuration subset, from:");
    println!("                           {}", config_names().join(", "));
    println!("  -w, --workloads a,b    workload subset (paper spellings, e.g. mcf,astar)");
    println!("  -h, --help             this message");
}

fn parse_count(text: &str) -> u64 {
    text.replace('_', "").parse().unwrap_or_else(|_| {
        eprintln!("`{text}` is not a number");
        std::process::exit(2);
    })
}

/// Every named configuration the CLI can select: the organization
/// registry (paper six + CoLT, in report order) plus the §4.3/§4.4
/// extension configs that ride outside the registry.
fn catalog() -> Vec<Config> {
    let mut configs = Config::all_registered().to_vec();
    configs.extend([Config::tlb_pred(), Config::fa_thp(), Config::fa_lite()]);
    configs
}

/// The selectable configuration names.
pub fn config_names() -> Vec<&'static str> {
    catalog().iter().map(|c| c.name).collect()
}

/// The normalization baseline for a selected configuration set: `4KB`
/// when present (the paper's baseline), else the first selection — so a
/// `--configs` subset without `4KB` still produces a well-defined table.
pub fn baseline<'a>(names: &[&'a str]) -> &'a str {
    names
        .iter()
        .copied()
        .find(|n| *n == "4KB")
        .unwrap_or_else(|| names.first().copied().unwrap_or("4KB"))
}

/// Looks a configuration up by its display name (case-insensitive); exits
/// with the valid names on failure.
pub fn config_by_name(name: &str) -> Config {
    catalog()
        .into_iter()
        .find(|c| c.name.eq_ignore_ascii_case(name))
        .unwrap_or_else(|| {
            eprintln!(
                "unknown config `{name}`; valid: {}",
                config_names().join(", ")
            );
            std::process::exit(2);
        })
}

/// Looks a workload up by its paper spelling (case-insensitive); exits
/// with the valid names on failure.
pub fn workload_by_name(name: &str) -> Workload {
    Workload::all()
        .into_iter()
        .find(|w| w.name().eq_ignore_ascii_case(name))
        .unwrap_or_else(|| {
            let names: Vec<&str> = Workload::all().iter().map(|w| w.name()).collect();
            eprintln!("unknown workload `{name}`; valid: {}", names.join(", "));
            std::process::exit(2);
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookups_are_case_insensitive() {
        assert_eq!(config_by_name("rmm_lite").name, "RMM_Lite");
        assert_eq!(workload_by_name("MCF").name(), "mcf");
    }

    #[test]
    fn catalog_covers_the_registry() {
        let names = config_names();
        for config in Config::all_registered() {
            assert!(names.contains(&config.name), "{} missing", config.name);
        }
        assert_eq!(config_by_name("colt").name, "CoLT");
    }

    #[test]
    fn count_parsing_allows_underscores() {
        assert_eq!(parse_count("5_000_000"), 5_000_000);
        assert_eq!(parse_count("42"), 42);
    }
}
