//! Long-run differential fuzzing of the TLB structures against the
//! `eeat-oracle` reference models.
//!
//! `--instructions` is reinterpreted as fuzz steps per (seed, target) and
//! `--seed` as the first seed; `EEAT_FUZZ_SEEDS` (default 8) sets how many
//! consecutive seeds run. Progress heartbeats go to stderr after every
//! completed target, so an overnight campaign is visibly alive. Any
//! divergence writes the minimized replay — stamped with the run manifest
//! as `#` comments — to `results/fuzz.repro.txt`, prints it, and exits
//! non-zero.
//!
//! CI runs `--instructions 10_000 --seed 1` with `EEAT_FUZZ_SEEDS=8`; the
//! default 20 M budget is the overnight setting.

use std::time::Instant;

use eeat_bench::{Cli, Runner};
use eeat_core::provenance_header;

fn main() {
    let cli = Cli::parse(
        "Differential fuzz of production TLB/MMU/Lite structures vs the eeat-oracle \
         reference models (--instructions = steps per seed and target; --seed = first \
         seed; EEAT_FUZZ_SEEDS = seed count, default 8)",
    );
    let mut runner = Runner::new("fuzz", &cli, &[]);
    let seeds: u64 = std::env::var("EEAT_FUZZ_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let steps = usize::try_from(cli.instructions).unwrap_or(usize::MAX);
    let start = Instant::now();
    eprintln!(
        "fuzzing seeds {}..{} at {steps} steps per target...",
        cli.seed,
        cli.seed + seeds
    );
    for seed in cli.seed..cli.seed + seeds {
        let outcome = eeat_oracle::fuzz_seed_with(seed, steps, |target, sub| {
            eprintln!(
                "seed {seed} target {target} (sub-seed {sub:#018x}): clean, \
                 {steps} steps, {:.1}s elapsed",
                start.elapsed().as_secs_f64()
            );
        });
        if let Err(failure) = outcome {
            eprintln!("{failure}");
            // Stamp the repro with this run's provenance so a checked-in
            // replay records exactly which build produced it.
            let mut repro = format!(
                "{}\n# target={} seed={} step={}\n# detail={}\n",
                provenance_header(&runner.manifest().summary_fields()),
                failure.target,
                failure.seed,
                failure.step,
                failure.detail.replace('\n', " "),
            );
            repro.push_str(&failure.replay);
            runner.sidecar("fuzz.repro.txt", repro);
            runner.line(&format!(
                "fuzz: DIVERGENCE in {} (seed {}); minimized replay in results/fuzz.repro.txt",
                failure.target, failure.seed
            ));
            runner.metric("fuzz/divergences", 1.0);
            runner.metric("fuzz/seeds", (seed - cli.seed) as f64);
            runner.metric("fuzz/steps_per_target", steps as f64);
            runner.finish();
            std::process::exit(1);
        }
        eprintln!("seed {seed}: clean");
    }
    runner.line(&format!(
        "fuzz: {seeds} seeds x {steps} steps per target, zero divergences"
    ));
    runner.metric("fuzz/divergences", 0.0);
    runner.metric("fuzz/seeds", seeds as f64);
    runner.metric("fuzz/steps_per_target", steps as f64);
    runner.finish();
}
