//! Long-run differential fuzzing of the TLB structures against the
//! `eeat-oracle` reference models.
//!
//! `--instructions` is reinterpreted as fuzz steps per (seed, target) and
//! `--seed` as the first seed; `EEAT_FUZZ_SEEDS` (default 8) sets how many
//! consecutive seeds run. Any divergence prints a minimized replay —
//! check it in under `crates/oracle/replays/` — and exits non-zero.
//!
//! CI runs `--instructions 10_000 --seed 1` with `EEAT_FUZZ_SEEDS=8`; the
//! default 20 M budget is the overnight setting.

use eeat_bench::Cli;

fn main() {
    let cli = Cli::parse(
        "Differential fuzz of production TLB/MMU/Lite structures vs the eeat-oracle \
         reference models (--instructions = steps per seed and target; --seed = first \
         seed; EEAT_FUZZ_SEEDS = seed count, default 8)",
    );
    let seeds: u64 = std::env::var("EEAT_FUZZ_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let steps = usize::try_from(cli.instructions).unwrap_or(usize::MAX);
    eprintln!(
        "fuzzing seeds {}..{} at {steps} steps per target...",
        cli.seed,
        cli.seed + seeds
    );
    for seed in cli.seed..cli.seed + seeds {
        if let Err(failure) = eeat_oracle::fuzz_seed(seed, steps) {
            eprintln!("{failure}");
            std::process::exit(1);
        }
        eprintln!("seed {seed}: clean");
    }
    println!("fuzz: {seeds} seeds x {steps} steps per target, zero divergences");
}
