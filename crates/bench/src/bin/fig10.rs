//! Figure 10: dynamic energy and TLB-miss cycles for the six
//! configurations on the TLB-intensive workloads, normalized to 4KB.
//!
//! Also prints the Figure 9 configuration summary as a header.

use eeat_bench::{baseline, norm, Cli, Runner};
use eeat_core::{mean_normalized, Config, Table};
use eeat_workloads::Workload;

fn main() {
    let cli = Cli::parse("Figure 10: dynamic energy and TLB-miss cycles, normalized to 4KB");
    let configs = cli.configs(&Config::all_six());
    let mut runner = Runner::new("fig10", &cli, &configs);
    runner.line("Simulated configurations (Figure 9):");
    for config in &configs {
        runner.line(&format!("  {config}"));
    }
    runner.blank();

    let results = runner.run_matrix(&cli, &Workload::TLB_INTENSIVE, &configs);
    let names: Vec<&str> = configs.iter().map(|c| c.name).collect();
    let base = baseline(&names);

    let mut energy = Table::new(
        &format!("Figure 10 (top): dynamic energy, normalized to {base}"),
        &[&["workload"], &names[..]].concat(),
    );
    for r in &results {
        let mut row = vec![r.workload.name().to_string()];
        for name in &names {
            row.push(norm(r.normalized(name, base, |x| x.energy.total_pj())));
        }
        energy.add_row(&row);
    }
    let mut avg = vec!["average".to_string()];
    for name in &names {
        avg.push(norm(mean_normalized(&results, name, base, |x| {
            x.energy.total_pj()
        })));
    }
    energy.add_row(&avg);
    runner.table(&energy);

    let mut cycles = Table::new(
        &format!("Figure 10 (bottom): cycles spent in TLB misses, normalized to {base}"),
        &[&["workload"], &names[..]].concat(),
    );
    for r in &results {
        let mut row = vec![r.workload.name().to_string()];
        for name in &names {
            row.push(norm(r.normalized(name, base, |x| x.cycles.total() as f64)));
        }
        cycles.add_row(&row);
    }
    let mut avg = vec!["average".to_string()];
    for name in &names {
        avg.push(norm(mean_normalized(&results, name, base, |x| {
            x.cycles.total() as f64
        })));
    }
    cycles.add_row(&avg);
    runner.table(&cycles);

    // The paper's headline comparisons are against THP (skipped when a
    // --configs subset leaves either side out).
    if names.contains(&"THP") {
        runner.line("Headline numbers (vs THP; paper: TLB_Lite -23% energy, RMM -8%, TLB_PP -43%, RMM_Lite -71%):");
        for name in ["TLB_Lite", "RMM", "TLB_PP", "RMM_Lite"] {
            if !names.contains(&name) {
                continue;
            }
            let e = mean_normalized(&results, name, "THP", |x| x.energy.total_pj());
            let c = mean_normalized(&results, name, "THP", |x| x.cycles.total() as f64);
            runner.line(&format!(
                "  {name:<9} energy {:+.1}%  miss-cycles {:+.1}%",
                (e - 1.0) * 100.0,
                (c - 1.0) * 100.0
            ));
            runner.metric(format!("headline/{name}/energy_vs_thp"), e);
            runner.metric(format!("headline/{name}/cycles_vs_thp"), c);
        }
    }
    runner.finish();
}
