//! Extension: the organization catalog under virtualized (two-dimensional)
//! address translation.
//!
//! Every organization runs native and virtualized over the same workloads
//! and seed. The TLB hierarchy sees identical guest translations either
//! way, so hit/miss behaviour is bit-identical; what changes is the cost
//! of an L2 miss — a nested walk translates every guest paging-structure
//! reference (and the data page) through the EPT, up to
//! `g*(h+1) + h = 24` memory references cold versus 4 native. The tables
//! report how much of that tax the per-dimension MMU caches and the
//! nested TLB of combined entries claw back, and what it costs in
//! translation energy.

use eeat_bench::{norm, Cli, Runner};
use eeat_core::{Config, RunResult, Simulator, Table};
use eeat_energy::Structure;
use eeat_paging::NestedWalker;
use eeat_types::VirtAddr;
use eeat_workloads::Workload;

fn main() {
    let cli = Cli::parse("Extension: native vs virtualized (nested EPT walks) across the catalog");
    let configs = Config::all_registered().to_vec();
    let workloads = cli.workloads(&Workload::TLB_INTENSIVE);
    let mut runner = Runner::new("virt", &cli, &configs);

    // Protocol check first: a cold nested 4 KiB walk on a fresh address
    // space must cost the full (g+1)*(h+1) - 1 = 24 references (4 guest +
    // 20 host), which is what makes virtualization worth measuring at all.
    let cold = cold_walk_refs(cli.seed);
    assert!(
        cold.0 > 4,
        "cold virtualized walk must out-cost a native walk, got {} refs",
        cold.0
    );
    runner.line(&format!(
        "Cold nested 4K walk: {} memory references ({} guest + {} host; native: 4)",
        cold.0, cold.1, cold.2
    ));
    runner.metric("cold/nested_4k_refs", f64::from(cold.0));
    runner.metric("cold/nested_4k_guest_refs", f64::from(cold.1));
    runner.metric("cold/nested_4k_host_refs", f64::from(cold.2));
    runner.blank();

    eprintln!(
        "running {} workloads x {} configs x native/virtualized at {} instructions...",
        workloads.len(),
        configs.len(),
        cli.instructions,
    );
    // One (native, virtualized) pair per cell. `run_matrix` keys cells by
    // config name, which both depths share, so the pairs run directly.
    let mut cells: Vec<Vec<(RunResult, RunResult)>> = Vec::with_capacity(workloads.len());
    for &workload in &workloads {
        eprintln!("  {workload}...");
        let mut row = Vec::with_capacity(configs.len());
        for config in &configs {
            let native =
                Simulator::from_workload(config.clone(), workload, cli.seed).run(cli.instructions);
            let virt = Simulator::from_workload(config.clone().virtualized(), workload, cli.seed)
                .run(cli.instructions);
            assert_eq!(
                (native.stats.l1_misses, native.stats.l2_misses),
                (virt.stats.l1_misses, virt.stats.l2_misses),
                "virtualization must not perturb TLB behaviour ({} / {workload})",
                config.name
            );
            row.push((native, virt));
        }
        cells.push(row);
    }

    // Per-organization summary, averaged over workloads.
    let mut tax = Table::new(
        "Nested walk tax by organization (averaged over workloads)",
        &[
            "org",
            "refs/walk native",
            "refs/walk virt",
            "guest/walk",
            "host/walk",
            "walk energy",
            "total energy",
        ],
    );
    for (c, config) in configs.iter().enumerate() {
        let mut native_rpw = 0.0;
        let mut virt_rpw = 0.0;
        let mut guest_rpw = 0.0;
        let mut host_rpw = 0.0;
        let mut walk_e = 0.0;
        let mut total_e = 0.0;
        for row in &cells {
            let (native, virt) = &row[c];
            let walks = (native.stats.l2_misses as f64).max(1.0);
            native_rpw += native.stats.walk_memory_refs as f64 / walks;
            virt_rpw += virt.stats.walk_memory_refs as f64 / walks;
            guest_rpw += virt.stats.guest_walk_refs as f64 / walks;
            host_rpw += virt.stats.host_walk_refs as f64 / walks;
            walk_e += walk_energy(virt) / walk_energy(native).max(f64::MIN_POSITIVE);
            total_e += virt.energy.total_pj() / native.energy.total_pj();
        }
        let n = workloads.len() as f64;
        tax.add_row(&[
            config.name.to_string(),
            format!("{:.2}", native_rpw / n),
            format!("{:.2}", virt_rpw / n),
            format!("{:.2}", guest_rpw / n),
            format!("{:.2}", host_rpw / n),
            norm(walk_e / n),
            norm(total_e / n),
        ]);
        runner.metric(
            format!("avg/{}/virt_total_energy_norm", config.name),
            total_e / n,
        );
        runner.metric(
            format!("avg/{}/virt_refs_per_walk", config.name),
            virt_rpw / n,
        );
    }
    runner.table(&tax);

    // Per-workload detail for the paper baseline.
    let mut detail = Table::new(
        "4KB baseline, per workload: native vs virtualized",
        &[
            "workload",
            "walks",
            "refs/walk native",
            "refs/walk virt",
            "host/walk",
            "total energy",
        ],
    );
    for (w, row) in workloads.iter().zip(&cells) {
        let (native, virt) = &row[0];
        let walks = (native.stats.l2_misses as f64).max(1.0);
        detail.add_row(&[
            w.name().to_string(),
            format!("{}", native.stats.l2_misses),
            format!("{:.2}", native.stats.walk_memory_refs as f64 / walks),
            format!("{:.2}", virt.stats.walk_memory_refs as f64 / walks),
            format!("{:.2}", virt.stats.host_walk_refs as f64 / walks),
            norm(virt.energy.total_pj() / native.energy.total_pj()),
        ]);
    }
    runner.table(&detail);

    runner.line("The TLBs shield most accesses from the 2D tax: per-access energy");
    runner.line("moves far less than the 6x worst-case walk cost. Organizations that");
    runner.line("kill walks outright (RMM's ranges, CoLT's coalescing, THP's reach)");
    runner.line("are worth proportionally more under virtualization than native.");
    runner.finish();
}

/// Dynamic energy of the walk path: walk references in both dimensions
/// plus every paging-structure cache and the nested TLB.
fn walk_energy(r: &RunResult) -> f64 {
    [
        Structure::PageWalk,
        Structure::HostWalk,
        Structure::MmuPde,
        Structure::MmuPdpte,
        Structure::MmuPml4,
        Structure::HostMmuPde,
        Structure::HostMmuPdpte,
        Structure::HostMmuPml4,
        Structure::NestedTlb,
    ]
    .iter()
    .map(|&s| r.energy.pj(s))
    .sum()
}

/// Walks one cold 4 KiB page on a fresh virtualized address space;
/// returns (total, guest, host) memory references.
fn cold_walk_refs(seed: u64) -> (u32, u32, u32) {
    let mut asp = eeat_os::AddressSpace::new(eeat_os::PagingPolicy::FourK, seed);
    asp.virtualize();
    let range = asp.mmap(4096, false, "cold");
    let mut walker = NestedWalker::sandy_bridge();
    let r = walker.walk(
        asp.page_table(),
        asp.ept().expect("virtualized"),
        VirtAddr::new(range.start().raw()),
    );
    assert!(r.translation.is_some(), "mapped page must translate");
    (r.memory_refs, r.guest_refs, r.host_refs)
}
