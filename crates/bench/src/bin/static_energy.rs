//! §6.2 extension: static (leakage) energy of the translation structures,
//! with and without power-gating of Lite-disabled ways.

use eeat_bench::{Cli, Runner};
use eeat_core::{Config, Simulator, Table};
use eeat_energy::PowerGating;
use eeat_workloads::Workload;

fn main() {
    let cli = Cli::parse("Static energy (§6.2): leakage with and without power-gating");
    let configs = [Config::thp(), Config::tlb_lite(), Config::rmm_lite()];
    let mut runner = Runner::new("static_energy", &cli, &configs);

    let mut table = Table::new(
        "Static energy (uJ) — translation structures, 3 GHz",
        &[
            "workload",
            "THP",
            "Lite:ungated",
            "Lite:gated",
            "RMML:ungated",
            "RMML:gated",
            "gated saves",
        ],
    );
    for w in cli.workloads(&Workload::TLB_INTENSIVE) {
        eprintln!("running {w}...");
        let static_of = |config: Config, gating: PowerGating| {
            let mut sim = Simulator::from_workload(config, w, cli.seed);
            sim.run(cli.instructions);
            sim.static_energy(gating)
        };
        let thp = static_of(Config::thp(), PowerGating::None);
        let lite_un = static_of(configs[1].clone(), PowerGating::None);
        let lite_gated = static_of(configs[1].clone(), PowerGating::Gated);
        let rmml_un = static_of(configs[2].clone(), PowerGating::None);
        let rmml_gated = static_of(configs[2].clone(), PowerGating::Gated);
        table.add_row(&[
            w.name().to_string(),
            format!("{:.2}", thp.total_uj()),
            format!("{:.2}", lite_un.total_uj()),
            format!("{:.2}", lite_gated.total_uj()),
            format!("{:.2}", rmml_un.total_uj()),
            format!("{:.2}", rmml_gated.total_uj()),
            format!(
                "{:.0}%",
                100.0 * (1.0 - rmml_gated.total_uj() / rmml_un.total_uj())
            ),
        ]);
    }
    runner.table(&table);
    runner.line("Paper §6.2: way-disabling also reduces static energy when combined");
    runner.line("with power-gating schemes (gated-Vdd); this quantifies that claim.");
    runner.finish();
}
