//! Figure 2: (a) dynamic-energy breakdown and (b) TLB-miss cycles for the
//! 4KB / THP / RMM configurations, normalized to 4KB per workload.

use eeat_bench::{norm, Cli, Runner};
use eeat_core::{mean_normalized, Config, Table};
use eeat_energy::Structure;
use eeat_workloads::Workload;

fn main() {
    let cli = Cli::parse("Figure 2: energy breakdown and TLB-miss cycles for 4KB/THP/RMM");
    // The 4KB/THP/RMM comparison is the figure's structure, so the
    // configuration set stays fixed here (--configs does not apply).
    let configs = [Config::four_k(), Config::thp(), Config::rmm()];
    let workloads = cli.workloads(&Workload::TLB_INTENSIVE);
    let mut runner = Runner::new("fig2", &cli, &configs);
    let results = runner.run_matrix(&cli, &workloads, &configs);

    let mut energy = Table::new(
        "Figure 2a: dynamic energy, normalized to 4KB (with L1-TLB / L2 / walk shares)",
        &[
            "workload",
            "4KB",
            "THP",
            "RMM",
            "4KB:L1%",
            "4KB:walk%",
            "THP:L1%",
            "THP:walk%",
        ],
    );
    for r in &results {
        let four_k = &r.get("4KB").expect("ran").result;
        let thp = &r.get("THP").expect("ran").result;
        let share =
            |e: &eeat_energy::EnergyBreakdown, f: f64| format!("{:.0}", 100.0 * f / e.total_pj());
        energy.add_row(&[
            r.workload.name().to_string(),
            norm(1.0),
            norm(r.normalized("THP", "4KB", |x| x.energy.total_pj())),
            norm(r.normalized("RMM", "4KB", |x| x.energy.total_pj())),
            share(&four_k.energy, four_k.energy.l1_pj()),
            share(&four_k.energy, four_k.energy.pj(Structure::PageWalk)),
            share(&thp.energy, thp.energy.l1_pj()),
            share(&thp.energy, thp.energy.pj(Structure::PageWalk)),
        ]);
    }
    runner.table(&energy);

    let mut cycles = Table::new(
        "Figure 2b: cycles in TLB misses, normalized to 4KB",
        &["workload", "4KB", "THP", "RMM"],
    );
    for r in &results {
        cycles.add_row(&[
            r.workload.name().to_string(),
            norm(1.0),
            norm(r.normalized("THP", "4KB", |x| x.cycles.total() as f64)),
            norm(r.normalized("RMM", "4KB", |x| x.cycles.total() as f64)),
        ]);
    }
    runner.table(&cycles);

    let thp_e = mean_normalized(&results, "THP", "4KB", |x| x.energy.total_pj());
    let thp_c = mean_normalized(&results, "THP", "4KB", |x| x.cycles.total() as f64);
    let rmm_c = mean_normalized(&results, "RMM", "4KB", |x| x.cycles.total() as f64);
    runner.line(&format!(
        "Averages: THP energy {:+.0}% (paper +4%), THP cycles {:+.0}% (paper -83%), RMM cycles {:+.0}% (paper -96%)",
        (thp_e - 1.0) * 100.0,
        (thp_c - 1.0) * 100.0,
        (rmm_c - 1.0) * 100.0
    ));
    runner.metric("avg/thp_energy_norm", thp_e);
    runner.metric("avg/thp_cycles_norm", thp_c);
    runner.metric("avg/rmm_cycles_norm", rmm_c);
    runner.finish();
}
