//! Compare two `results/*.json` run artifacts, or schema-validate them.
//!
//! ```text
//! report_diff A.json B.json [--tolerance T]   # exit 1 when metrics differ
//! report_diff --validate FILE...              # exit 1 when any file is invalid
//! report_diff --check-trace FILE...           # exit 1 on malformed .trace.json
//! ```
//!
//! The diff flags every metric whose symmetric relative delta
//! `|a-b| / max(|a|,|b|)` exceeds the tolerance (default 0, i.e. bit-exact)
//! and every key present on only one side, largest delta first — including
//! the `dist/<key>/<percentile>` virtual metrics from each artifact's
//! `distributions` section, which is what the CI tail-latency gate diffs.
//! Artifacts from different experiments (config-hash mismatch) still diff,
//! with a note — usually that means the comparison itself is a category
//! error.
//!
//! `--validate` reports **every** schema violation in each file, not just
//! the first. `--check-trace` runs the in-repo chrome trace-event-format
//! checker over `.trace.json` span sidecars.

use std::process::ExitCode;

use eeat_obs::{diff_artifacts, json, validate, validate_chrome_trace, RunArtifact};

fn usage() -> ExitCode {
    eprintln!("usage: report_diff A.json B.json [--tolerance T]");
    eprintln!("       report_diff --validate FILE...");
    eprintln!("       report_diff --check-trace FILE...");
    ExitCode::from(2)
}

fn read(path: &str) -> Result<String, ExitCode> {
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("{path}: {e}");
        ExitCode::from(2)
    })
}

fn run_validate(paths: &[String]) -> ExitCode {
    if paths.is_empty() {
        return usage();
    }
    let mut failures = 0usize;
    for path in paths {
        let text = match read(path) {
            Ok(t) => t,
            Err(code) => return code,
        };
        let problems = match json::parse(&text) {
            Ok(doc) => validate(&doc),
            Err(e) => vec![e],
        };
        if problems.is_empty() {
            println!("{path}: ok");
        } else {
            failures += 1;
            println!("{path}: INVALID");
            for p in &problems {
                println!("  {p}");
            }
        }
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        eprintln!("{failures} of {} files invalid", paths.len());
        ExitCode::FAILURE
    }
}

fn run_check_trace(paths: &[String]) -> ExitCode {
    if paths.is_empty() {
        return usage();
    }
    let mut failures = 0usize;
    for path in paths {
        let text = match read(path) {
            Ok(t) => t,
            Err(code) => return code,
        };
        let problems = validate_chrome_trace(&text);
        if problems.is_empty() {
            println!("{path}: ok");
        } else {
            failures += 1;
            println!("{path}: INVALID");
            for p in &problems {
                println!("  {p}");
            }
        }
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        eprintln!("{failures} of {} trace files invalid", paths.len());
        ExitCode::FAILURE
    }
}

fn run_diff(a_path: &str, b_path: &str, tolerance: f64) -> ExitCode {
    let parse = |path: &str| -> Result<RunArtifact, ExitCode> {
        RunArtifact::parse(&read(path)?).map_err(|e| {
            eprintln!("{path}: {e}");
            ExitCode::from(2)
        })
    };
    let (a, b) = match (parse(a_path), parse(b_path)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    println!(
        "comparing {a_path} ({}, commit {}) vs {b_path} ({}, commit {}), tolerance {tolerance}",
        a.manifest.bench, a.manifest.commit, b.manifest.bench, b.manifest.commit
    );
    let report = diff_artifacts(&a, &b, tolerance);
    print!("{report}");
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--validate") {
        return run_validate(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("--check-trace") {
        return run_check_trace(&args[1..]);
    }
    let mut tolerance = 0.0f64;
    let mut files: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--tolerance" | "-t" => {
                let Some(value) = iter.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                tolerance = value;
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => files.push(arg),
        }
    }
    match files.as_slice() {
        [a, b] => run_diff(a, b, tolerance),
        _ => usage(),
    }
}
