//! Table 5: (i) the share of L1 page-TLB lookups at 4/2/1 active ways and
//! (ii) the share of L1 hits per structure, for TLB_Lite and RMM_Lite.

use eeat_bench::{pct, Cli, Runner};
use eeat_core::{Config, Table};
use eeat_workloads::Workload;

fn main() {
    let cli = Cli::parse("Table 5: lookup shares by active ways and L1 hit shares");
    let configs = [Config::tlb_lite(), Config::rmm_lite()];
    let mut runner = Runner::new("table5", &cli, &configs);

    let mut ways = Table::new(
        "Table 5 (left): % of lookups at 4/2/1 active ways",
        &[
            "workload",
            "Lite-4KB:4w",
            "Lite-4KB:2w",
            "Lite-4KB:1w",
            "Lite-2MB:4w",
            "Lite-2MB:2w",
            "Lite-2MB:1w",
            "RMML-4KB:4w",
            "RMML-4KB:2w",
            "RMML-4KB:1w",
        ],
    );
    let mut hits = Table::new(
        "Table 5 (right): % of L1 hits per structure",
        &["workload", "Lite:4KB", "Lite:2MB", "RMML:4KB", "RMML:range"],
    );

    let mut way_sums = [0.0f64; 9];
    let mut hit_sums = [0.0f64; 4];
    let workloads = cli.workloads(&Workload::TLB_INTENSIVE);
    for results in runner.run_matrix(&cli, &workloads, &configs) {
        let workload = results.workload;
        let lite = &results.get("TLB_Lite").expect("ran").result.stats;
        let rmml = &results.get("RMM_Lite").expect("ran").result.stats;

        let (l4w4, l4w2, l4w1) = lite.l1_4k_way_shares();
        let (l2w4, l2w2, l2w1) = lite.l1_2m_way_shares();
        let (r4w4, r4w2, r4w1) = rmml.l1_4k_way_shares();
        let way_vals = [l4w4, l4w2, l4w1, l2w4, l2w2, l2w1, r4w4, r4w2, r4w1];
        let mut row = vec![workload.name().to_string()];
        row.extend(way_vals.iter().map(|&v| pct(v)));
        ways.add_row(&row);

        let (lh4, lh2, _, _) = lite.l1_hit_shares();
        let (rh4, _, _, rhr) = rmml.l1_hit_shares();
        let hit_vals = [lh4, lh2, rh4, rhr];
        let mut row = vec![workload.name().to_string()];
        row.extend(hit_vals.iter().map(|&v| pct(v)));
        hits.add_row(&row);

        for (s, v) in way_sums.iter_mut().zip(way_vals) {
            *s += v;
        }
        for (s, v) in hit_sums.iter_mut().zip(hit_vals) {
            *s += v;
        }
    }

    let n = workloads.len() as f64;
    let mut row = vec!["average".to_string()];
    row.extend(way_sums.iter().map(|&s| pct(s / n)));
    ways.add_row(&row);
    let mut row = vec!["average".to_string()];
    row.extend(hit_sums.iter().map(|&s| pct(s / n)));
    hits.add_row(&row);

    runner.table(&ways);
    runner.table(&hits);
    runner.line(
        "Paper averages: Lite-4KB 51.2/32.9/15.9, Lite-2MB 81.1/9.0/9.9, RMML-4KB 25.9/10.4/63.7;",
    );
    runner.line("hits: Lite 64.4% 4KB / 35.6% 2MB; RMM_Lite 15.9% 4KB / 84.1% range.");
    runner.finish();
}
