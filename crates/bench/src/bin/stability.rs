//! Seed-stability check: the headline ratios across independent seeds.
//!
//! The models are stochastic (seeded); this harness reports mean ± spread
//! of the normalized energies so every figure can be quoted with its
//! run-to-run variation.

use eeat_bench::{baseline, Cli, Runner};
use eeat_core::{mean_normalized, Config, Table};
use eeat_workloads::Workload;

fn main() {
    let cli = Cli::parse("Seed stability: headline ratios across 5 independent seeds");
    let exp = cli.experiment();
    let mut runner = Runner::new("stability", &cli, &cli.configs(&Config::all_six()));
    let seeds: Vec<u64> = (0..5).map(|i| cli.seed + i * 1000).collect();
    let configs = cli.configs(&Config::all_six());
    let names: Vec<&str> = configs.iter().map(|c| c.name).collect();
    let base = if names.contains(&"THP") {
        "THP"
    } else {
        baseline(&names)
    };

    let mut table = Table::new(
        &format!("Seed stability: mean energy vs {base} across 5 seeds (min..max)"),
        &["config", "mean", "min", "max", "spread"],
    );

    let mut per_config: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];
    let workloads = cli.workloads(&Workload::TLB_INTENSIVE);
    for &s in &seeds {
        eprintln!("seed {s}...");
        let results = exp.with_seed(s).run_matrix(&workloads, &configs);
        for (i, config) in configs.iter().enumerate() {
            per_config[i].push(mean_normalized(&results, config.name, base, |r| {
                r.energy.total_pj()
            }));
        }
    }

    for (config, vals) in configs.iter().zip(&per_config) {
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let min = vals.iter().cloned().fold(f64::MAX, f64::min);
        let max = vals.iter().cloned().fold(f64::MIN, f64::max);
        table.add_row(&[
            config.name.to_string(),
            format!("{mean:.3}"),
            format!("{min:.3}"),
            format!("{max:.3}"),
            format!("{:.1}%", 100.0 * (max - min) / mean),
        ]);
    }
    runner.table(&table);
    runner.finish();
}
