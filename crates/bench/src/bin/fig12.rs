//! Figure 12: dynamic-energy reduction for the remaining Spec2006 and
//! Parsec workloads (the non-TLB-intensive set).

use eeat_bench::{baseline, norm, Cli, Runner};
use eeat_core::{mean_normalized, Config, Table, WorkloadResults};
use eeat_workloads::Workload;

fn run_set(runner: &mut Runner, cli: &Cli, title: &str, set: &[Workload]) -> Vec<WorkloadResults> {
    let configs = cli.configs(&Config::all_six());
    let names: Vec<&str> = configs.iter().map(|c| c.name).collect();

    // The Spec/Parsec split is the figure's structure, so the workload
    // sets stay fixed here (--workloads does not apply).
    let results = runner.run_matrix(cli, set, &configs);
    let base = baseline(&names);
    let mut table = Table::new(title, &[&["workload"], &names[..]].concat());
    for r in &results {
        let mut row = vec![r.workload.name().to_string()];
        for name in &names {
            row.push(norm(r.normalized(name, base, |x| x.energy.total_pj())));
        }
        table.add_row(&row);
    }
    runner.table(&table);
    results
}

fn main() {
    let cli = Cli::parse("Figure 12: energy reduction for the non-TLB-intensive workloads");
    let configs = cli.configs(&Config::all_six());
    let mut runner = Runner::new("fig12", &cli, &configs);
    let spec = run_set(
        &mut runner,
        &cli,
        "Figure 12 (top/middle): remaining Spec2006 — energy normalized to 4KB",
        &Workload::OTHER_SPEC,
    );
    let parsec = run_set(
        &mut runner,
        &cli,
        "Figure 12 (bottom): remaining Parsec — energy normalized to 4KB",
        &Workload::OTHER_PARSEC,
    );

    // The paper's summary compares against THP (skipped when a --configs
    // subset leaves either side out).
    let names: Vec<&str> = configs.iter().map(|c| c.name).collect();
    if names.contains(&"THP") && names.contains(&"TLB_Lite") && names.contains(&"RMM_Lite") {
        for (label, results, lite_target, rmml_target) in [
            ("Spec2006", &spec, -26.0, -72.0),
            ("Parsec", &parsec, -20.0, -66.0),
        ] {
            let lite = mean_normalized(results, "TLB_Lite", "THP", |x| x.energy.total_pj());
            let rmml = mean_normalized(results, "RMM_Lite", "THP", |x| x.energy.total_pj());
            runner.line(&format!(
                "{label}: TLB_Lite {:+.0}% vs THP (paper {lite_target:+.0}%), RMM_Lite {:+.0}% (paper {rmml_target:+.0}%)",
                (lite - 1.0) * 100.0,
                (rmml - 1.0) * 100.0,
            ));
            runner.metric(format!("summary/{label}/tlb_lite_energy_vs_thp"), lite);
            runner.metric(format!("summary/{label}/rmm_lite_energy_vs_thp"), rmml);
        }
    }
    runner.finish();
}
