//! Figure 12: dynamic-energy reduction for the remaining Spec2006 and
//! Parsec workloads (the non-TLB-intensive set).

use eeat_bench::{experiment, norm};
use eeat_core::{mean_normalized, Config, Table, WorkloadResults};
use eeat_workloads::Workload;

fn run_set(title: &str, set: &[Workload]) -> Vec<WorkloadResults> {
    let exp = experiment();
    let configs = Config::all_six();
    let names: Vec<&str> = configs.iter().map(|c| c.name).collect();

    let mut table = Table::new(title, &[&["workload"], &names[..]].concat());
    let mut results = Vec::new();
    for &w in set {
        eprintln!("running {w}...");
        let r = exp.run_workload(w, &configs);
        let mut row = vec![w.name().to_string()];
        for name in &names {
            row.push(norm(r.normalized(name, "4KB", |x| x.energy.total_pj())));
        }
        table.add_row(&row);
        results.push(r);
    }
    println!("{table}");
    results
}

fn main() {
    let spec = run_set(
        "Figure 12 (top/middle): remaining Spec2006 — energy normalized to 4KB",
        &Workload::OTHER_SPEC,
    );
    let parsec = run_set(
        "Figure 12 (bottom): remaining Parsec — energy normalized to 4KB",
        &Workload::OTHER_PARSEC,
    );

    for (label, results, lite_target, rmml_target) in [
        ("Spec2006", &spec, -26.0, -72.0),
        ("Parsec", &parsec, -20.0, -66.0),
    ] {
        let lite = mean_normalized(results, "TLB_Lite", "THP", |x| x.energy.total_pj());
        let rmml = mean_normalized(results, "RMM_Lite", "THP", |x| x.energy.total_pj());
        println!(
            "{label}: TLB_Lite {:+.0}% vs THP (paper {lite_target:+.0}%), RMM_Lite {:+.0}% (paper {rmml_target:+.0}%)",
            (lite - 1.0) * 100.0,
            (rmml - 1.0) * 100.0,
        );
    }
}
