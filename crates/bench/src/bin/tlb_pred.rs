//! Extension: perfect TLB_PP versus the realizable TLB_Pred, sweeping the
//! prediction-table size.
//!
//! The paper treats TLB_PP as an unrealizable upper bound ("these results
//! under report its true costs … but is unrealizable in practice"). This
//! binary quantifies the gap with an actual region-hashed predictor whose
//! first-probe misses cost a second L1 access.

use eeat_bench::{norm, Cli, Runner};
use eeat_core::{Config, Simulator, Table};
use eeat_workloads::Workload;

fn main() {
    let cli = Cli::parse("Extension: perfect TLB_PP vs realizable TLB_Pred by predictor size");
    let mut runner = Runner::new("tlb_pred", &cli, &[Config::thp(), Config::tlb_pp()]);
    let table_sizes = [64usize, 256, 1024];

    let mut table = Table::new(
        "TLB_Pred vs perfect TLB_PP — energy normalized to THP",
        &[
            "workload",
            "TLB_PP",
            "Pred-64",
            "Pred-256",
            "Pred-1024",
            "mispredict-256",
        ],
    );

    for w in cli.workloads(&Workload::TLB_INTENSIVE) {
        eprintln!("running {w}...");
        let thp = {
            let mut sim = Simulator::from_workload(Config::thp(), w, cli.seed);
            sim.run(cli.instructions).energy.total_pj()
        };
        let pp = {
            let mut sim = Simulator::from_workload(Config::tlb_pp(), w, cli.seed);
            sim.run(cli.instructions).energy.total_pj()
        };
        let mut row = vec![w.name().to_string(), norm(pp / thp)];
        let mut mispredict = String::new();
        for &entries in &table_sizes {
            let mut config = Config::tlb_pred();
            config.predictor_entries = Some(entries);
            let mut sim = Simulator::from_workload(config, w, cli.seed);
            let r = sim.run(cli.instructions);
            row.push(norm(r.energy.total_pj() / thp));
            if entries == 256 {
                mispredict = format!(
                    "{:.3}%",
                    sim.predictor().expect("pred").misprediction_ratio() * 100.0
                );
            }
        }
        row.push(mispredict);
        table.add_row(&row);
    }
    runner.table(&table);
    runner.line("The realizable predictor tracks TLB_PP closely on hits (region-level");
    runner.line("page sizes are stable) but pays a second probe on every L1 miss —");
    runner.line("the gap grows with the workload's miss rate.");
    runner.finish();
}
