//! §4.4 ablation: separate set-associative L1 TLBs (the Intel baseline)
//! versus a single fully associative mixed-size L1 (the SPARC/AMD
//! organization), with and without Lite.
//!
//! Quantifies the paper's design rationale: "Separate set associative TLBs
//! are generally more energy-efficient as compared to fully associative",
//! and shows Lite's clustering applies to fully associative structures too.

use eeat_bench::{norm, Cli, Runner};
use eeat_core::{mean_normalized, Config, Table};
use eeat_workloads::Workload;

fn main() {
    let cli = Cli::parse("§4.4 ablation: set-associative vs fully associative L1, with Lite");
    let configs = [
        Config::thp(),
        Config::tlb_lite(),
        Config::fa_thp(),
        Config::fa_lite(),
    ];
    let names: Vec<&str> = configs.iter().map(|c| c.name).collect();
    let mut runner = Runner::new("fa_ablation", &cli, &configs);

    let mut table = Table::new(
        "FA ablation: dynamic energy, normalized to THP",
        &[&["workload"], &names[..], &["FA mean entries"]].concat(),
    );
    let workloads = cli.workloads(&Workload::TLB_INTENSIVE);
    let results = runner.run_matrix(&cli, &workloads, &configs);
    for r in &results {
        let mut row = vec![r.workload.name().to_string()];
        for name in &names {
            row.push(norm(r.normalized(name, "THP", |x| x.energy.total_pj())));
        }
        row.push(format!(
            "{:.1}",
            r.get("FA_Lite")
                .expect("ran")
                .result
                .stats
                .l1_fa_mean_entries()
        ));
        table.add_row(&row);
    }
    runner.table(&table);

    for name in ["TLB_Lite", "FA", "FA_Lite"] {
        let e = mean_normalized(&results, name, "THP", |x| x.energy.total_pj());
        let c = mean_normalized(&results, name, "THP", |x| x.cycles.total() as f64);
        runner.line(&format!(
            "  {name:<9} energy {:+.1}%  miss-cycles {:+.1}% vs THP",
            (e - 1.0) * 100.0,
            (c - 1.0) * 100.0
        ));
        runner.metric(format!("headline/{name}/energy_vs_thp"), e);
        runner.metric(format!("headline/{name}/cycles_vs_thp"), c);
    }
    runner.blank();
    runner.line("Structure-for-structure the FA search costs more than a same-capacity");
    runner.line("set-associative lookup (8.1 vs 5.9 pJ at 64 entries) — the paper's");
    runner.line("baseline rationale; the organization can still compete because it");
    runner.line("probes one structure instead of two. Lite's power-of-two clustering");
    runner.line("applies to it unchanged (§4.4), recovering energy when the working");
    runner.line("set is small.");
    runner.finish();
}
