//! Single-thread throughput harness for the batched hot loop.
//!
//! Measures accesses/sec of the simulator on the Figure 2 mix
//! (`TLB_INTENSIVE` workloads × {4KB, THP, RMM}) and attributes wall time
//! to each pipeline stage, writing machine-readable results to
//! `BENCH_throughput.json`.
//!
//! The headline accesses/sec number comes from *unprofiled* runs (the
//! `()`-monomorphized pipeline, zero instrumentation); the per-stage
//! breakdown comes from separate profiled runs, whose own throughput is
//! pessimistic by the cost of two clock reads per stage boundary. Stage
//! shares are attributed against the *instrumented pass's own wall time*,
//! measured around the very same run that produced the stage timers —
//! never against the plain wall, which a slower instrumented pass would
//! overrun (stage sums above 100% of wall). The profiler self-calibrates
//! its clock-pair cost and reports it as `profiler_overhead_seconds`; the
//! share denominator is the instrumented wall *minus* that self-time, so
//! shares approximate the plain run's composition. Time the stage brackets
//! don't cover (trace generation, step dispatch, residual clock cost) is
//! reported as the `unattributed` share. Both walls land in the artifact:
//! `seconds` (plain, the headline) and `instrumented_seconds`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p eeat-bench --bin throughput [-- --smoke] [--out PATH] [--best-of N]
//! EEAT_INSTRUCTIONS=2_000_000 cargo run --release -p eeat-bench --bin throughput
//! ```
//!
//! `--best-of N` (default 5 full / 1 smoke) repeats each unprofiled cell N
//! times and keeps the minimum wall time — the standard estimator on hosts
//! with background load, since noise only ever adds time.
//!
//! `--smoke` runs a small instruction budget for CI: it validates the
//! harness end to end but its accesses/sec are not comparable to the
//! committed baseline, so the speedup fields are omitted.
//!
//! Two observer-overhead passes ride along: one with the full
//! `EpochSeries` telemetry observer (vs the plain `()` run), and one with
//! only the always-on `LatencyObserver` (the per-cell latency histograms
//! every matrix bench records), measured *marginally* against the empty
//! observer stack the matrix runner always carried — the histograms'
//! own cost, not the pre-existing event-dispatch cost. That marginal
//! rate ratio is acceptance-gated at ≥ 0.97 (≤ 3% overhead) in full
//! runs, and the merged distribution lands as p50/p90/p99/p999 columns
//! in `BENCH_throughput.json`.

use std::fmt::Write as _;
use std::time::Instant;

use eeat_bench::Runner;
use eeat_core::{Config, Simulator, Stage, DEFAULT_BLOCK};
use eeat_obs::{EpochSeries, LatencyHistogram, LatencyObserver};
use eeat_workloads::Workload;

/// Pre-batching baseline, measured on this machine at the parent commit of
/// the hot-loop refactor (per-access loop, AoS TLB storage,
/// `Option<TimelineObserver>` branch in the sink, pre-refactor release
/// profile): same workload mix, 5 M instructions per cell, single thread.
///
/// Methodology: the build host is a noisy single-CPU box, so baseline and
/// refactored binaries were run interleaved over many rounds and each
/// config's entry is the *best* observed baseline rate (min-of-N wall time)
/// — the estimate least disturbed by background load, and the one most
/// favorable to the baseline.
const BASELINE_ACC_PER_SEC: [(&str, f64); 3] = [
    ("4KB", 9_113_113.0),
    ("THP", 9_624_173.0),
    ("RMM", 9_486_958.0),
];

const SEED: u64 = 42;
const FULL_INSTRUCTIONS: u64 = 5_000_000;
const SMOKE_INSTRUCTIONS: u64 = 200_000;

/// The acceptance bound on histogram cost: the latency-histogram pass must
/// retain at least this fraction of the empty-observer-stack baseline's
/// throughput (≤ 3% marginal overhead) in full runs.
const HIST_MIN_RATE_RATIO: f64 = 0.97;

struct ConfigResult {
    name: &'static str,
    accesses: u64,
    /// Plain (unprofiled) wall time: best-of-N, the headline denominator.
    seconds: f64,
    /// Wall time of the instrumented pass, bracketing the same runs that
    /// filled `stage_seconds` — the only valid denominator for stage
    /// shares.
    instrumented_seconds: f64,
    /// Profiler self-time subtracted from the stage totals (calibrated
    /// clock-pair cost x brackets); removed from the share denominator too.
    profiler_overhead_seconds: f64,
    stage_seconds: [f64; 5],
    /// Merged translation-latency distribution across the workload mix,
    /// from the histogram pass (filled in `main`, after `measure`).
    latency: LatencyHistogram,
    /// Histogram-pass throughput relative to plain — the ≤ 3% overhead
    /// acceptance number.
    hist_rate_ratio: f64,
}

impl ConfigResult {
    /// Per-stage share of the instrumented wall net of profiler self-time,
    /// with the final element being the unattributed remainder (work
    /// outside the stage brackets).
    fn shares(&self) -> [f64; 6] {
        let wall =
            (self.instrumented_seconds - self.profiler_overhead_seconds).max(f64::MIN_POSITIVE);
        let mut shares = [0.0; 6];
        let mut attributed = 0.0;
        for (i, s) in self.stage_seconds.iter().enumerate() {
            shares[i] = s / wall;
            attributed += s;
        }
        shares[5] = ((wall - attributed) / wall).max(0.0);
        shares
    }
}

fn measure(config: &Config, instructions: u64, best_of: u32) -> ConfigResult {
    // Headline throughput: unprofiled batched runs. Per workload the wall
    // time is the *minimum* over `best_of` repeats — on a host with
    // background load, the fastest repeat is the one least disturbed by
    // noise, and every reported rate is still an actually-achieved run.
    let mut accesses = 0u64;
    let mut seconds = 0.0f64;
    for &workload in &Workload::TLB_INTENSIVE {
        let mut best = f64::INFINITY;
        let mut cell_accesses = 0u64;
        for _ in 0..best_of.max(1) {
            let mut sim = Simulator::from_workload(config.clone(), workload, SEED);
            let t = Instant::now();
            let r = sim.run(instructions);
            best = best.min(t.elapsed().as_secs_f64());
            cell_accesses = r.stats.accesses;
        }
        seconds += best;
        accesses += cell_accesses;
    }
    // Per-stage attribution: separate profiled runs (fresh simulators, so
    // the profiled run sees the identical access stream). The instrumented
    // wall is clocked around the same runs that fill the stage timers, so
    // stages and their denominator come from one pass and shares are
    // guaranteed consistent.
    let mut stage_seconds = [0.0f64; 5];
    let mut instrumented_seconds = 0.0f64;
    let mut profiler_overhead_seconds = 0.0f64;
    for &workload in &Workload::TLB_INTENSIVE {
        let mut sim = Simulator::from_workload(config.clone(), workload, SEED);
        let t = Instant::now();
        let (_, profile) = sim.run_block_profiled(instructions, DEFAULT_BLOCK);
        instrumented_seconds += t.elapsed().as_secs_f64();
        profiler_overhead_seconds += profile.overhead_seconds();
        for (i, stage) in Stage::ALL.into_iter().enumerate() {
            stage_seconds[i] += profile.seconds(stage);
        }
    }
    ConfigResult {
        name: config.name,
        accesses,
        seconds,
        instrumented_seconds,
        profiler_overhead_seconds,
        stage_seconds,
        latency: LatencyHistogram::new(),
        hist_rate_ratio: 0.0,
    }
}

/// Histogram-overhead check, measured *marginally*: the matrix runner
/// attached an external observer stack long before the histograms existed
/// (`(Option<EpochSeries>, Option<TraceRing>)`, both `None` by default),
/// so the cost of constructing and dispatching per-access events is
/// pre-existing, not the histograms'. Pass A runs with that empty stack;
/// pass B swaps in the always-on [`LatencyObserver`]. B/A is the price of
/// the bucketing itself — the number the ≥ [`HIST_MIN_RATE_RATIO`]
/// acceptance bound gates. Returns `(rate_a, rate_b, merged)` where the
/// merged distribution comes from pass B (deterministic: same seed, every
/// repeat identical).
fn measure_hist(config: &Config, instructions: u64, best_of: u32) -> (f64, f64, LatencyHistogram) {
    let mut wall = [0.0f64; 2];
    let mut accesses = 0u64;
    let mut merged = LatencyHistogram::new();
    for &workload in &Workload::TLB_INTENSIVE {
        let mut best = [f64::INFINITY; 2];
        let mut cell_accesses = 0u64;
        let mut cell_hist = LatencyHistogram::new();
        for _ in 0..best_of.max(1) {
            // Pass A: the pre-histogram observer stack with telemetry off.
            // Interleaved with pass B so background-load noise hits both.
            let mut sim = Simulator::from_workload(config.clone(), workload, SEED);
            let mut noop: (Option<EpochSeries>, Option<eeat_obs::TraceRing>) = (None, None);
            let t = Instant::now();
            let r = sim.run_with_observer(instructions, &mut noop);
            best[0] = best[0].min(t.elapsed().as_secs_f64());
            cell_accesses = r.stats.accesses;

            // Pass B: the same stack plus the latency histograms.
            let mut sim = Simulator::from_workload(config.clone(), workload, SEED);
            let mut obs = LatencyObserver::default();
            let t = Instant::now();
            let r = sim.run_with_observer(instructions, &mut obs);
            best[1] = best[1].min(t.elapsed().as_secs_f64());
            assert_eq!(
                r.stats.accesses, cell_accesses,
                "observer perturbed the run"
            );
            cell_hist = obs.merged();
            std::hint::black_box(cell_hist.count());
        }
        accesses += cell_accesses;
        wall[0] += best[0];
        wall[1] += best[1];
        merged.merge(&cell_hist);
    }
    (accesses as f64 / wall[0], accesses as f64 / wall[1], merged)
}

/// Observer-overhead check: the same unprofiled measurement with a full
/// [`EpochSeries`] telemetry observer (energy embedded) attached. The ratio
/// against the plain run is the acceptance criterion that telemetry stays
/// within noise.
fn measure_observed(config: &Config, instructions: u64, best_of: u32) -> (u64, f64) {
    let bucket = (instructions / 20).max(1);
    let mut accesses = 0u64;
    let mut seconds = 0.0f64;
    for &workload in &Workload::TLB_INTENSIVE {
        let mut best = f64::INFINITY;
        let mut cell_accesses = 0u64;
        for _ in 0..best_of.max(1) {
            let mut sim = Simulator::from_workload(config.clone(), workload, SEED);
            let ways = sim
                .hierarchy()
                .l1_4k()
                .map(|t| t.active_ways())
                .unwrap_or(0);
            let mut series =
                EpochSeries::new(0, bucket, ways, Some(sim.telemetry_energy_observer()));
            let t = Instant::now();
            let r = sim.run_with_observer(instructions, &mut series);
            best = best.min(t.elapsed().as_secs_f64());
            cell_accesses = r.stats.accesses;
            std::hint::black_box(series.rows().len());
        }
        seconds += best;
        accesses += cell_accesses;
    }
    (accesses, seconds)
}

fn baseline_for(name: &str) -> Option<f64> {
    BASELINE_ACC_PER_SEC
        .iter()
        .find(|(n, _)| *n == name)
        .map(|&(_, v)| v)
}

fn render_json(results: &[ConfigResult], instructions: u64, smoke: bool, best_of: u32) -> String {
    let mut out = String::new();
    writeln!(out, "{{").unwrap();
    writeln!(out, "  \"bench\": \"throughput\",").unwrap();
    writeln!(out, "  \"workload_mix\": \"TLB_INTENSIVE\",").unwrap();
    writeln!(out, "  \"instructions_per_cell\": {instructions},").unwrap();
    writeln!(out, "  \"block\": {DEFAULT_BLOCK},").unwrap();
    writeln!(out, "  \"seed\": {SEED},").unwrap();
    writeln!(out, "  \"smoke\": {smoke},").unwrap();
    writeln!(out, "  \"best_of\": {best_of},").unwrap();
    writeln!(out, "  \"configs\": [").unwrap();
    for (ci, r) in results.iter().enumerate() {
        let acc_per_sec = r.accesses as f64 / r.seconds;
        writeln!(out, "    {{").unwrap();
        writeln!(out, "      \"name\": \"{}\",", r.name).unwrap();
        writeln!(out, "      \"accesses\": {},", r.accesses).unwrap();
        writeln!(out, "      \"seconds\": {:.6},", r.seconds).unwrap();
        writeln!(
            out,
            "      \"instrumented_seconds\": {:.6},",
            r.instrumented_seconds
        )
        .unwrap();
        writeln!(
            out,
            "      \"profiler_overhead_seconds\": {:.6},",
            r.profiler_overhead_seconds
        )
        .unwrap();
        writeln!(out, "      \"accesses_per_sec\": {acc_per_sec:.0},").unwrap();
        writeln!(out, "      \"hist_rate_ratio\": {:.4},", r.hist_rate_ratio).unwrap();
        // Same shape as an artifact `distributions` entry (mean and the
        // p50/p90/p99/p999 tail columns), merged across the workload mix.
        writeln!(
            out,
            "      \"latency_cycles\": {},",
            r.latency.summary_json(false).to_compact()
        )
        .unwrap();
        if !smoke {
            if let Some(before) = baseline_for(r.name) {
                writeln!(out, "      \"baseline_accesses_per_sec\": {before:.0},").unwrap();
                writeln!(out, "      \"speedup\": {:.3},", acc_per_sec / before).unwrap();
            }
        }
        writeln!(out, "      \"stage_seconds\": {{").unwrap();
        for (i, stage) in Stage::ALL.into_iter().enumerate() {
            let comma = if i + 1 < Stage::ALL.len() { "," } else { "" };
            writeln!(
                out,
                "        \"{}\": {:.6}{comma}",
                stage.name(),
                r.stage_seconds[i]
            )
            .unwrap();
        }
        writeln!(out, "      }},").unwrap();
        // Shares against the instrumented wall (same pass): always sum to
        // at most 1, with the remainder reported as `unattributed`.
        let shares = r.shares();
        writeln!(out, "      \"stage_share\": {{").unwrap();
        for (i, stage) in Stage::ALL.into_iter().enumerate() {
            writeln!(out, "        \"{}\": {:.4},", stage.name(), shares[i]).unwrap();
        }
        writeln!(out, "        \"unattributed\": {:.4}", shares[5]).unwrap();
        writeln!(out, "      }}").unwrap();
        let comma = if ci + 1 < results.len() { "," } else { "" };
        writeln!(out, "    }}{comma}").unwrap();
    }
    writeln!(out, "  ]").unwrap();
    writeln!(out, "}}").unwrap();
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_throughput.json".to_string());
    let best_of: u32 = args
        .iter()
        .position(|a| a == "--best-of")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 1 } else { 5 });
    let instructions: u64 = std::env::var("EEAT_INSTRUCTIONS")
        .ok()
        .and_then(|v| v.replace('_', "").parse().ok())
        .unwrap_or(if smoke {
            SMOKE_INSTRUCTIONS
        } else {
            FULL_INSTRUCTIONS
        });

    let configs = [Config::four_k(), Config::thp(), Config::rmm()];
    let mut runner = Runner::with_params("throughput", SEED, instructions, 1, &configs);
    let mut results = Vec::new();
    for config in &configs {
        let mut r = measure(config, instructions, best_of);
        let acc_per_sec = r.accesses as f64 / r.seconds;
        let speedup = if smoke {
            String::new()
        } else {
            baseline_for(r.name)
                .map(|b| format!("  {:>5.2}x vs baseline", acc_per_sec / b))
                .unwrap_or_default()
        };
        let shares = r.shares();
        let mut share_strs: Vec<String> = Stage::ALL
            .into_iter()
            .enumerate()
            .map(|(i, s)| format!("{} {:.0}%", s.name(), 100.0 * shares[i]))
            .collect();
        share_strs.push(format!("other {:.0}%", 100.0 * shares[5]));
        runner.line(&format!(
            "{:4} {:>12} accesses  {:>8.3} s  {:>12.0} acc/s{}  [{} of {:.3} s attributable]",
            r.name,
            r.accesses,
            r.seconds,
            acc_per_sec,
            speedup,
            share_strs.join(", "),
            (r.instrumented_seconds - r.profiler_overhead_seconds).max(0.0),
        ));
        runner.metric(format!("config/{}/accesses_per_sec", r.name), acc_per_sec);
        runner.metric(
            format!("config/{}/instrumented_seconds", r.name),
            r.instrumented_seconds,
        );
        runner.metric(
            format!("config/{}/profiler_overhead_seconds", r.name),
            r.profiler_overhead_seconds,
        );
        if !smoke {
            if let Some(before) = baseline_for(r.name) {
                runner.metric(
                    format!("config/{}/speedup_vs_baseline", r.name),
                    acc_per_sec / before,
                );
            }
        }
        for (i, stage) in Stage::ALL.into_iter().enumerate() {
            runner.metric(
                format!("config/{}/stage_share/{}", r.name, stage.name()),
                shares[i],
            );
        }
        runner.metric(
            format!("config/{}/stage_share/unattributed", r.name),
            shares[5],
        );

        let (obs_accesses, obs_seconds) = measure_observed(config, instructions, best_of);
        let obs_per_sec = obs_accesses as f64 / obs_seconds;
        let ratio = obs_per_sec / acc_per_sec;
        runner.line(&format!(
            "{:4} observed: {:>12.0} acc/s with EpochSeries telemetry ({:.3}x plain)",
            r.name, obs_per_sec, ratio
        ));
        runner.metric(
            format!("config/{}/observed_accesses_per_sec", r.name),
            obs_per_sec,
        );
        runner.metric(format!("config/{}/observer_rate_ratio", r.name), ratio);

        // Histogram pass: the always-on latency distributions must cost
        // under 3% of the observer-stack baseline they were added to
        // (acceptance-gated in full runs, where the budget is long enough
        // for the ratio to be signal).
        let (noop_per_sec, hist_per_sec, latency) = measure_hist(config, instructions, best_of);
        let hist_ratio = hist_per_sec / noop_per_sec;
        runner.line(&format!(
            "{:4} histogram: {:>11.0} acc/s with LatencyObserver ({:.3}x the {:.0} acc/s \
             empty-observer baseline)  p50 {}  p99 {}  p999 {}  max {}",
            r.name,
            hist_per_sec,
            hist_ratio,
            noop_per_sec,
            latency.percentile(0.50),
            latency.percentile(0.99),
            latency.percentile(0.999),
            latency.max(),
        ));
        runner.metric(
            format!("config/{}/noop_observer_accesses_per_sec", r.name),
            noop_per_sec,
        );
        runner.metric(
            format!("config/{}/hist_accesses_per_sec", r.name),
            hist_per_sec,
        );
        runner.metric(format!("config/{}/hist_rate_ratio", r.name), hist_ratio);
        for (q, key) in [(0.50, "p50"), (0.90, "p90"), (0.99, "p99"), (0.999, "p999")] {
            runner.metric(
                format!("config/{}/latency/{key}", r.name),
                latency.percentile(q) as f64,
            );
        }
        runner.metric(
            format!("config/{}/latency/max", r.name),
            latency.max() as f64,
        );
        if !smoke {
            assert!(
                hist_ratio >= HIST_MIN_RATE_RATIO,
                "{}: latency histograms cost {:.1}% of observer-stack throughput (budget 3%)",
                r.name,
                (1.0 - hist_ratio) * 100.0
            );
        }
        r.latency = latency;
        r.hist_rate_ratio = hist_ratio;
        results.push(r);
    }

    let json = render_json(&results, instructions, smoke, best_of);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    runner.line(&format!("wrote {out_path}"));
    runner.finish();
}
