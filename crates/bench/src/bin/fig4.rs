//! Figure 4: aggregate L1 TLB MPKI over execution time under fixed L1-4KB
//! TLB sizes — *Base* (4 KiB pages), *64*, *32*, *16* (THP).

use eeat_bench::{Cli, Runner};
use eeat_core::fig4_fixed_sizes;
use eeat_workloads::Workload;

fn main() {
    let cli = Cli::parse("Figure 4: L1 TLB MPKI timeline under fixed L1-4KB TLB sizes");
    let mut runner = Runner::new("fig4", &cli, &[]);
    let bucket = (cli.instructions / 20).max(1_000_000);

    for workload in cli.workloads(&Workload::TLB_INTENSIVE) {
        eprintln!("running {workload}...");
        let series = fig4_fixed_sizes(workload, cli.instructions, bucket, cli.seed);
        runner.line(&format!("== Figure 4: {workload} — L1 MPKI timeline =="));
        let mut header = format!("{:>14}", "instr (M)");
        for (label, _) in &series {
            header.push_str(&format!("  {label:>8}"));
        }
        runner.line(&header);
        let samples = series[0].1.len();
        for i in 0..samples {
            let mut row = format!("{:>14.0}", series[0].1[i].instructions as f64 / 1e6);
            for (_, timeline) in &series {
                if let Some(p) = timeline.get(i) {
                    row.push_str(&format!("  {:>8.2}", p.l1_mpki));
                } else {
                    row.push_str(&format!("  {:>8}", "-"));
                }
            }
            runner.line(&row);
        }
        runner.blank();
        for (label, timeline) in &series {
            if timeline.is_empty() {
                continue;
            }
            let mean = timeline.iter().map(|p| p.l1_mpki).sum::<f64>() / timeline.len() as f64;
            let last = timeline.last().expect("non-empty").l1_mpki;
            let key = |m: &str| format!("cell/{}/{label}/{m}", workload.name());
            runner.metric(key("l1_mpki_mean"), mean);
            runner.metric(key("l1_mpki_last"), last);
        }
    }
    runner.line("Paper: most workloads keep similar MPKI with smaller L1-4KB TLBs under");
    runner.line("THP, but no single size fits all workloads or all phases.");
    runner.finish();
}
