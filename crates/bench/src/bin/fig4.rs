//! Figure 4: aggregate L1 TLB MPKI over execution time under fixed L1-4KB
//! TLB sizes — *Base* (4 KiB pages), *64*, *32*, *16* (THP).

use eeat_bench::Cli;
use eeat_core::fig4_fixed_sizes;
use eeat_workloads::Workload;

fn main() {
    let cli = Cli::parse("Figure 4: L1 TLB MPKI timeline under fixed L1-4KB TLB sizes");
    let bucket = (cli.instructions / 20).max(1_000_000);

    for workload in cli.workloads(&Workload::TLB_INTENSIVE) {
        eprintln!("running {workload}...");
        let series = fig4_fixed_sizes(workload, cli.instructions, bucket, cli.seed);
        println!("== Figure 4: {workload} — L1 MPKI timeline ==");
        print!("{:>14}", "instr (M)");
        for (label, _) in &series {
            print!("  {label:>8}");
        }
        println!();
        let samples = series[0].1.len();
        for i in 0..samples {
            print!("{:>14.0}", series[0].1[i].instructions as f64 / 1e6);
            for (_, timeline) in &series {
                if let Some(p) = timeline.get(i) {
                    print!("  {:>8.2}", p.l1_mpki);
                } else {
                    print!("  {:>8}", "-");
                }
            }
            println!();
        }
        println!();
    }
    println!("Paper: most workloads keep similar MPKI with smaller L1-4KB TLBs under");
    println!("THP, but no single size fits all workloads or all phases.");
}
