//! Extension: the coalesced CoLT TLB head-to-head against the paper's
//! energy-efficient organizations.
//!
//! CoLT attacks the same L1-reach problem as TLB_Lite and RMM_Lite from
//! the opposite direction: instead of resizing or range-translating, one
//! set-associative entry covers up to 8 physically contiguous 4 KiB
//! mappings. The table reports L1 MPKI, dynamic translation energy
//! normalized to 4KB, and the coalescing the allocator's contiguity
//! actually bought (resident pages per CoLT entry at the end of the run).

use eeat_bench::{norm, Cli, Runner};
use eeat_core::{mean_normalized, Config, Simulator, Table};
use eeat_workloads::Workload;

fn main() {
    let cli = Cli::parse("Extension: coalesced CoLT TLB vs 4KB / TLB_Lite / RMM_Lite");
    let configs = [
        Config::four_k(),
        Config::tlb_lite(),
        Config::rmm_lite(),
        Config::colt(),
    ];
    let workloads = cli.workloads(&Workload::TLB_INTENSIVE);
    let mut runner = Runner::new("colt", &cli, &configs);
    let results = runner.run_matrix(&cli, &workloads, &configs);

    let mut mpki = Table::new(
        "CoLT head-to-head: L1 MPKI",
        &["workload", "4KB", "TLB_Lite", "RMM_Lite", "CoLT"],
    );
    for r in &results {
        let cell = |name: &str| format!("{:.3}", r.get(name).expect("ran").result.stats.l1_mpki());
        mpki.add_row(&[
            r.workload.name().to_string(),
            cell("4KB"),
            cell("TLB_Lite"),
            cell("RMM_Lite"),
            cell("CoLT"),
        ]);
    }
    runner.table(&mpki);

    let mut energy = Table::new(
        "CoLT head-to-head: dynamic energy, normalized to 4KB",
        &["workload", "TLB_Lite", "RMM_Lite", "CoLT"],
    );
    for r in &results {
        let n = |name: &str| norm(r.normalized(name, "4KB", |x| x.energy.total_pj()));
        energy.add_row(&[
            r.workload.name().to_string(),
            n("TLB_Lite"),
            n("RMM_Lite"),
            n("CoLT"),
        ]);
    }
    runner.table(&energy);

    // Coalescing vs allocator contiguity: CoLT's reach is an OS property
    // as much as a hardware one. Sweep the workload spec's
    // alloc_contiguity knob (probability a fresh frame extends the
    // current physical run) and re-run CoLT at each point; the 1.0 column
    // is the eager-allocation setting of the matrix above.
    const CONTIGUITY: [f64; 4] = [0.25, 0.5, 0.75, 1.0];
    let mut reach = Table::new(
        "CoLT coalescing vs allocator contiguity (pages/entry at end of run)",
        &["workload", "p=0.25", "p=0.50", "p=0.75", "p=1.00"],
    );
    let mut grid_mpki = Table::new(
        "CoLT L1 MPKI vs allocator contiguity",
        &["workload", "p=0.25", "p=0.50", "p=0.75", "p=1.00"],
    );
    for &w in &workloads {
        eprintln!("sweeping contiguity on {w}...");
        let mut reach_row = vec![w.name().to_string()];
        let mut mpki_row = vec![w.name().to_string()];
        for &p in &CONTIGUITY {
            let mut spec = w.spec();
            spec.alloc_contiguity = p;
            let mut sim = Simulator::from_spec(Config::colt(), &spec, cli.seed);
            let result = sim.run(cli.instructions);
            let colt = sim.hierarchy().l1_colt().expect("CoLT config");
            let entries = colt.occupancy();
            let pages = colt.coverage_pages();
            let factor = if entries == 0 {
                0.0
            } else {
                pages as f64 / entries as f64
            };
            reach_row.push(format!("{factor:.2}"));
            mpki_row.push(format!("{:.3}", result.stats.l1_mpki()));
            let key =
                |metric: &str| format!("grid/{}/p{:02}/{metric}", w.name(), (p * 100.0) as u32);
            runner.metric(key("pages_per_entry"), factor);
            runner.metric(key("l1_mpki"), result.stats.l1_mpki());
        }
        reach.add_row(&reach_row);
        grid_mpki.add_row(&mpki_row);
    }
    runner.table(&reach);
    runner.table(&grid_mpki);

    let colt_e = mean_normalized(&results, "CoLT", "4KB", |x| x.energy.total_pj());
    let lite_e = mean_normalized(&results, "TLB_Lite", "4KB", |x| x.energy.total_pj());
    let colt_c = mean_normalized(&results, "CoLT", "4KB", |x| x.cycles.total() as f64);
    runner.line(&format!(
        "Averages vs 4KB: CoLT energy {:+.0}%, TLB_Lite energy {:+.0}%, CoLT miss cycles {:+.0}%",
        (colt_e - 1.0) * 100.0,
        (lite_e - 1.0) * 100.0,
        (colt_c - 1.0) * 100.0
    ));
    runner.metric("avg/colt_energy_norm", colt_e);
    runner.metric("avg/tlb_lite_energy_norm", lite_e);
    runner.metric("avg/colt_cycles_norm", colt_c);
    runner.line("Eager contiguous allocation (p=1.0) gives CoLT near-full groups;");
    runner.line("the contiguity grid above shows how fragmentation erodes the");
    runner.line("coalescing factor — and with it CoLT's MPKI edge — as the");
    runner.line("allocator breaks physical runs.");
    runner.finish();
}
