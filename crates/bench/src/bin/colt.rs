//! Extension: the coalesced CoLT TLB head-to-head against the paper's
//! energy-efficient organizations.
//!
//! CoLT attacks the same L1-reach problem as TLB_Lite and RMM_Lite from
//! the opposite direction: instead of resizing or range-translating, one
//! set-associative entry covers up to 8 physically contiguous 4 KiB
//! mappings. The table reports L1 MPKI, dynamic translation energy
//! normalized to 4KB, and the coalescing the allocator's contiguity
//! actually bought (resident pages per CoLT entry at the end of the run).

use eeat_bench::{norm, Cli, Runner};
use eeat_core::{mean_normalized, Config, Simulator, Table};
use eeat_workloads::Workload;

fn main() {
    let cli = Cli::parse("Extension: coalesced CoLT TLB vs 4KB / TLB_Lite / RMM_Lite");
    let configs = [
        Config::four_k(),
        Config::tlb_lite(),
        Config::rmm_lite(),
        Config::colt(),
    ];
    let workloads = cli.workloads(&Workload::TLB_INTENSIVE);
    let mut runner = Runner::new("colt", &cli, &configs);
    let results = runner.run_matrix(&cli, &workloads, &configs);

    let mut mpki = Table::new(
        "CoLT head-to-head: L1 MPKI",
        &["workload", "4KB", "TLB_Lite", "RMM_Lite", "CoLT"],
    );
    for r in &results {
        let cell = |name: &str| format!("{:.3}", r.get(name).expect("ran").result.stats.l1_mpki());
        mpki.add_row(&[
            r.workload.name().to_string(),
            cell("4KB"),
            cell("TLB_Lite"),
            cell("RMM_Lite"),
            cell("CoLT"),
        ]);
    }
    runner.table(&mpki);

    let mut energy = Table::new(
        "CoLT head-to-head: dynamic energy, normalized to 4KB",
        &["workload", "TLB_Lite", "RMM_Lite", "CoLT"],
    );
    for r in &results {
        let n = |name: &str| norm(r.normalized(name, "4KB", |x| x.energy.total_pj()));
        energy.add_row(&[
            r.workload.name().to_string(),
            n("TLB_Lite"),
            n("RMM_Lite"),
            n("CoLT"),
        ]);
    }
    runner.table(&energy);

    // Coalescing actually achieved: re-run CoLT per workload (the matrix
    // consumed its simulators) and read the resident reach at the end.
    let mut reach = Table::new(
        "CoLT coalescing at end of run",
        &["workload", "entries", "pages covered", "pages/entry"],
    );
    for &w in &workloads {
        let mut sim = Simulator::from_workload(Config::colt(), w, cli.seed);
        sim.run(cli.instructions);
        let colt = sim.hierarchy().l1_colt().expect("CoLT config");
        let entries = colt.occupancy();
        let pages = colt.coverage_pages();
        let factor = if entries == 0 {
            0.0
        } else {
            pages as f64 / entries as f64
        };
        reach.add_row(&[
            w.name().to_string(),
            entries.to_string(),
            pages.to_string(),
            format!("{factor:.2}"),
        ]);
        runner.metric(format!("cell/{}/CoLT/pages_per_entry", w.name()), factor);
    }
    runner.table(&reach);

    let colt_e = mean_normalized(&results, "CoLT", "4KB", |x| x.energy.total_pj());
    let lite_e = mean_normalized(&results, "TLB_Lite", "4KB", |x| x.energy.total_pj());
    let colt_c = mean_normalized(&results, "CoLT", "4KB", |x| x.cycles.total() as f64);
    runner.line(&format!(
        "Averages vs 4KB: CoLT energy {:+.0}%, TLB_Lite energy {:+.0}%, CoLT miss cycles {:+.0}%",
        (colt_e - 1.0) * 100.0,
        (lite_e - 1.0) * 100.0,
        (colt_c - 1.0) * 100.0
    ));
    runner.metric("avg/colt_energy_norm", colt_e);
    runner.metric("avg/tlb_lite_energy_norm", lite_e);
    runner.metric("avg/colt_cycles_norm", colt_c);
    runner.line("Eager contiguous allocation gives CoLT near-full groups; the");
    runner.line("workload spec's alloc_contiguity knob fragments the runs to");
    runner.line("study sensitivity (1.0 here).");
    runner.finish();
}
