//! Figure 11: L1 and L2 TLB misses per thousand instructions for every
//! configuration on the TLB-intensive workloads.

use eeat_bench::{Cli, Runner};
use eeat_core::{Config, Table};
use eeat_workloads::Workload;

fn main() {
    let cli = Cli::parse("Figure 11: L1 and L2 TLB MPKI for every configuration");
    let configs = cli.configs(&Config::all_six());
    let mut runner = Runner::new("fig11", &cli, &configs);
    let results = runner.run_matrix(&cli, &Workload::TLB_INTENSIVE, &configs);
    let names: Vec<&str> = configs.iter().map(|c| c.name).collect();

    for (title, metric) in [
        ("Figure 11 (top): L1 TLB MPKI", true),
        ("Figure 11 (bottom): L2 TLB MPKI", false),
    ] {
        let mut table = Table::new(title, &[&["workload"], &names[..]].concat());
        for r in &results {
            let mut row = vec![r.workload.name().to_string()];
            for name in &names {
                let stats = &r.get(name).expect("config ran").result.stats;
                let mpki = if metric {
                    stats.l1_mpki()
                } else {
                    stats.l2_mpki()
                };
                row.push(format!("{mpki:.2}"));
            }
            table.add_row(&row);
        }
        runner.table(&table);
    }
    runner.finish();
}
