//! Figure 3: sensitivity of 4KB-page dynamic energy to the L1-cache hit
//! ratio of page-walk references (100 % → 0 %).

use eeat_bench::{norm, Cli, Runner};
use eeat_core::{fig3_walk_locality, Table};
use eeat_workloads::Workload;

fn main() {
    let cli = Cli::parse("Figure 3: energy sensitivity to page-walk L1-cache locality");
    let mut runner = Runner::new("fig3", &cli, &[]);
    let ratios = [1.0, 0.75, 0.5, 0.25, 0.0];

    let mut headers: Vec<String> = vec!["workload".into()];
    headers.extend(ratios.iter().map(|r| format!("{:.0}%", r * 100.0)));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        "Figure 3: energy vs page-walk L1$ hit ratio (normalized to 100%)",
        &header_refs,
    );

    for workload in cli.workloads(&Workload::TLB_INTENSIVE) {
        eprintln!("running {workload}...");
        let points = fig3_walk_locality(workload, cli.instructions, cli.seed, &ratios);
        let mut row = vec![workload.name().to_string()];
        row.extend(points.iter().map(|&(_, e)| norm(e)));
        table.add_row(&row);
    }
    runner.table(&table);
    runner.line("Paper: poor walk locality increases dynamic energy by up to 91% (mcf).");
    runner.finish();
}
