//! Ablation: range-TLB sizing. The paper fixes the L1-range TLB at 4
//! entries ("like the small L1-1GB TLB, so that it meets the tight timing
//! requirements") and the L2-range TLB at 32. This sweep quantifies what
//! those choices cost and buy.

use eeat_bench::{norm, Cli, Runner};
use eeat_core::{Config, Simulator, Table};
use eeat_workloads::Workload;

fn main() {
    let cli = Cli::parse("Ablation: L1/L2 range-TLB sizing for RMM_Lite");
    let mut runner = Runner::new("range_sweep", &cli, &[Config::rmm_lite()]);
    let l1_sizes = [2usize, 4, 8, 16];
    let l2_sizes = [8usize, 32, 128];

    // L1-range sweep at the default L2 (32 entries).
    let mut headers: Vec<String> = vec!["workload".into()];
    headers.extend(l1_sizes.iter().map(|n| format!("L1r={n}")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut l1_table = Table::new(
        "RMM_Lite energy vs L1-range entries (normalized to the 4-entry default)",
        &header_refs,
    );

    for w in cli.workloads(&Workload::TLB_INTENSIVE) {
        eprintln!("sweeping L1-range for {w}...");
        let mut energies = Vec::new();
        for &n in &l1_sizes {
            let mut config = Config::rmm_lite();
            config.l1_range_entries = Some(n);
            let mut sim = Simulator::from_workload(config, w, cli.seed);
            energies.push(sim.run(cli.instructions).energy.total_pj());
        }
        let baseline = energies[1]; // 4 entries
        let mut row = vec![w.name().to_string()];
        row.extend(energies.iter().map(|&e| norm(e / baseline)));
        l1_table.add_row(&row);
    }
    runner.table(&l1_table);

    // L2-range sweep on the workload with the most ranges (omnetpp).
    let mut l2_table = Table::new(
        "omnetpp: L2-range entries vs walks and energy (RMM_Lite)",
        &["L2-range", "L2 MPKI", "range-table walks", "energy (uJ)"],
    );
    for &n in &l2_sizes {
        let mut config = Config::rmm_lite();
        config.l2_range_entries = Some(n);
        let mut sim = Simulator::from_workload(config, Workload::Omnetpp, cli.seed);
        let r = sim.run(cli.instructions);
        l2_table.add_row(&[
            n.to_string(),
            format!("{:.3}", r.stats.l2_mpki()),
            r.stats.range_table_walks.to_string(),
            format!("{:.2}", r.energy.total_pj() / 1e6),
        ]);
    }
    runner.table(&l2_table);
    runner.line("Doubling the L1-range TLB beyond 4 entries buys little for most");
    runner.line("workloads (few live ranges) but helps the many-arena ones; the");
    runner.line("32-entry L2-range TLB is already past the knee for every workload.");
    runner.finish();
}
