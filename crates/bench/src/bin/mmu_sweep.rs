//! Ablation: paging-structure (MMU) cache geometry vs page-walk cost.
//!
//! The paper adopts the Intel-style PDE/PDPTE/PML4 caches of
//! [Bhattacharjee 2013] (Table 2 geometry). This sweep shows how the PDE
//! cache size drives the average memory references per walk — the `Mem`
//! term of the walk-energy equation.

use eeat_bench::{Cli, Runner};
use eeat_core::Table;
use eeat_paging::{MmuCaches, PageWalker};
use eeat_types::VirtAddr;
use eeat_workloads::{TraceGenerator, Workload};

fn main() {
    let cli = Cli::parse("Ablation: MMU (PDE) cache geometry vs memory references per walk");
    let mut runner = Runner::new("mmu_sweep", &cli, &[]);
    let pde_sizes = [(4usize, 2usize), (16, 2), (32, 2), (128, 4)];

    let mut table = Table::new(
        "avg memory references per 4 KiB page walk vs PDE-cache size",
        &["workload", "PDE=4", "PDE=16", "PDE=32 (paper)", "PDE=128"],
    );

    let default = [
        Workload::Mcf,
        Workload::CactusADM,
        Workload::Astar,
        Workload::Canneal,
    ];
    for w in cli.workloads(&default) {
        eprintln!("sweeping {w}...");
        // Drive the raw walker with the workload's address stream under the
        // 4 KiB policy: every L2-miss-like access walks.
        let spec = w.spec();
        let mut asp = eeat_os::AddressSpace::new(eeat_os::PagingPolicy::FourK, cli.seed);
        let regions: Vec<Vec<eeat_types::VirtRange>> = spec
            .regions
            .iter()
            .map(|r| {
                (0..r.count)
                    .map(|_| asp.mmap(r.bytes, r.thp_eligible, r.name))
                    .collect()
            })
            .collect();
        let mut row = vec![w.name().to_string()];
        for &(entries, ways) in &pde_sizes {
            let mut generator = TraceGenerator::new(&spec, regions.clone(), cli.seed);
            let mut walker =
                PageWalker::new(MmuCaches::with_geometry((entries, ways), (4, 4), (2, 2)));
            // Walk a sample of the stream (every 16th access) to bound time.
            let samples = (cli.instructions / 160).max(10_000);
            for i in 0..samples * 16 {
                let acc = generator.next_access();
                if i % 16 == 0 {
                    let r = walker.walk(asp.page_table(), VirtAddr::new(acc.vaddr().raw()));
                    assert!(r.translation.is_some());
                }
            }
            row.push(format!("{:.2}", walker.avg_memory_refs()));
        }
        table.add_row(&row);
    }
    runner.table(&table);
    runner.line("Sequential scans keep even a tiny PDE cache warm (~1 ref/walk);");
    runner.line("pointer chases over gigabytes defeat all realistic sizes, which is");
    runner.line("why range translations (no walk at all) beat bigger MMU caches.");
    runner.finish();
}
