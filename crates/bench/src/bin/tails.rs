//! Tail-latency bench: translation-latency distributions for the full
//! organization catalog.
//!
//! Where the figure benches report means, this one reports the shape of
//! the distribution: per (workload, org) cell the runner's always-on
//! [`LatencyObserver`] buckets every access's translation cycles by
//! outcome class, and this bin renders the per-class breakdown (hit
//! shares, walk tails) on top of the runner's merged p50/p99/p999 table.
//! The artifact's `distributions` section carries the same numbers, which
//! is what CI's tail-latency regression gate diffs against the committed
//! baseline (`fixtures/tails/baseline.json`) with a percentile tolerance.
//!
//! ```text
//! cargo run --release -p eeat-bench --bin tails
//! EEAT_INSTRUCTIONS=500_000 cargo run --release -p eeat-bench --bin tails
//! ```

use eeat_bench::{Cli, Runner};
use eeat_core::{Org, Table};
use eeat_workloads::Workload;

fn main() {
    let cli = Cli::parse("Tail latency: per-class translation cycle distributions, all orgs");
    let configs: Vec<_> = Org::all().iter().map(|o| o.config()).collect();
    let workloads = cli.workloads(&Workload::TLB_INTENSIVE);
    let mut runner = Runner::new("tails", &cli, &configs);
    // The matrix run already prints the merged tails table and lands every
    // cell's distributions in the artifact; this bin adds the class view.
    let _ = runner.run_matrix(&cli, &workloads, &configs);

    let mut rows: Vec<[String; 7]> = Vec::new();
    for (workload, config, latency) in runner.latency_cells() {
        let cell = format!("{workload}/{config}");
        let total: u64 = latency.histograms().iter().map(|h| h.count()).sum();
        for (class, hist) in latency.class_histograms() {
            if hist.count() == 0 {
                continue;
            }
            rows.push([
                cell.clone(),
                class.name().to_string(),
                hist.count().to_string(),
                format!("{:.1}", 100.0 * hist.count() as f64 / total.max(1) as f64),
                hist.percentile(0.50).to_string(),
                hist.percentile(0.99).to_string(),
                hist.max().to_string(),
            ]);
        }
    }
    let mut table = Table::new(
        "Outcome-class breakdown (cycles per translated access)",
        &["cell", "class", "count", "share%", "p50", "p99", "max"],
    );
    for row in &rows {
        table.add_row(row);
    }
    runner.table(&table);
    runner.line("Tails live in the walk classes: L1/L2 hits are flat by construction,");
    runner.line("so p99 movement in the merged table means the walk mix shifted —");
    runner.line("compare the class rows above to see which one.");
    runner.finish();
}
