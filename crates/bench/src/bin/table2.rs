//! Table 2: the energy model — per-structure read/write energies and
//! leakage, plus the calibrated surrogate values this reproduction adds.

use eeat_bench::{Cli, Runner};
use eeat_core::Table;
use eeat_energy::{table2, CacheEnergyModel, EnergyModel};

fn main() {
    // No simulation here, but parse anyway so --help works uniformly.
    let cli = Cli::parse("Table 2: the per-operation energy model");
    let mut runner = Runner::new("table2", &cli, &[]);
    let mut t = Table::new(
        "Table 2: dynamic energy per operation (32 nm, from the paper)",
        &[
            "component",
            "size",
            "assoc",
            "read (pJ)",
            "write (pJ)",
            "leak (mW)",
        ],
    );
    let rows: [(&str, &str, &str, table2::ReadWritePj); 13] = [
        ("L1-4KB TLB", "64", "4-way", table2::L1_4K_4WAY),
        ("L1-4KB TLB", "32", "2-way", table2::L1_4K_2WAY),
        ("L1-4KB TLB", "16", "1-way", table2::L1_4K_1WAY),
        ("L1-2MB TLB", "32", "4-way", table2::L1_2M_4WAY),
        ("L1-2MB TLB", "16", "2-way", table2::L1_2M_2WAY),
        ("L1-2MB TLB", "8", "1-way", table2::L1_2M_1WAY),
        ("L1-range TLB", "4", "fully", table2::L1_RANGE),
        ("L2-4KB TLB", "512", "4-way", table2::L2_PAGE),
        ("L2-range TLB", "32", "fully", table2::L2_RANGE),
        ("MMU-cache PDE", "32", "2-way", table2::MMU_PDE),
        ("MMU-cache PDPTE", "4", "fully", table2::MMU_PDPTE),
        ("MMU-cache PML4", "2", "fully", table2::MMU_PML4),
        ("L1-Cache", "32KB", "8-way", table2::L1_CACHE),
    ];
    for (name, size, assoc, e) in rows {
        t.add_row(&[
            name.to_string(),
            size.to_string(),
            assoc.to_string(),
            format!("{:.3}", e.read_pj),
            format!("{:.3}", e.write_pj),
            format!("{:.4}", e.leakage_mw),
        ]);
    }
    runner.table(&t);

    let mut s = Table::new(
        "Surrogate values added by this reproduction (see DESIGN.md §3)",
        &["component", "value", "basis"],
    );
    let l2 = CacheEnergyModel::sandy_bridge_l2();
    let model = EnergyModel::sandy_bridge();
    s.add_row(&[
        "L2-Cache read".into(),
        format!("{:.1} pJ", l2.read_pj()),
        "sqrt-capacity scaling from the 32KB anchor".into(),
    ]);
    s.add_row(&[
        "L1-1GB TLB read".into(),
        format!("{:.3} pJ", model.l1_1g(4).read_pj),
        "MMU PDPTE surrogate (same 4-entry FA geometry)".into(),
    ]);
    s.add_row(&[
        "walk ref @ 0% L1$ hit".into(),
        format!("{:.1} pJ", model.with_walk_l1_hit_ratio(0.0).walk_ref_pj()),
        "Figure 3 sweep endpoint".into(),
    ]);
    runner.table(&s);
    runner.finish();
}
