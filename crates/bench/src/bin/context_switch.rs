//! Extension: multiprogramming pressure. A core without ASIDs flushes its
//! TLBs on every context switch; this sweep shows how timeslice length
//! interacts with each organization — and that range translations refill
//! far faster than page entries (one entry re-covers a whole VMA).

use eeat_bench::{Cli, Runner};
use eeat_core::{Config, Simulator, Table};
use eeat_workloads::Workload;

fn main() {
    let cli = Cli::parse("Extension: context-switch flush pressure vs timeslice length");
    let mut runner = Runner::new(
        "context_switch",
        &cli,
        &cli.configs(&[Config::tlb_lite(), Config::rmm_lite()]),
    );
    // Timeslices in instructions; None = no multiprogramming.
    let slices: [Option<u64>; 4] = [None, Some(5_000_000), Some(1_000_000), Some(200_000)];

    let default = [Workload::Mcf, Workload::Omnetpp, Workload::GemsFDTD];
    for w in cli.workloads(&default) {
        eprintln!("running {w}...");
        let mut table = Table::new(
            &format!("{w}: context-switch flush pressure"),
            &[
                "timeslice",
                "config",
                "L1 MPKI",
                "L2 MPKI",
                "energy (uJ)",
                "Lite reacts",
            ],
        );
        for &slice in &slices {
            for config in cli.configs(&[Config::tlb_lite(), Config::rmm_lite()]) {
                let name = config.name;
                let mut sim = Simulator::from_workload(config, w, cli.seed);
                sim.set_flush_interval(slice);
                let r = sim.run(cli.instructions);
                table.add_row(&[
                    slice
                        .map(|s| format!("{:.1}M", s as f64 / 1e6))
                        .unwrap_or_else(|| "none".into()),
                    name.to_string(),
                    format!("{:.2}", r.stats.l1_mpki()),
                    format!("{:.3}", r.stats.l2_mpki()),
                    format!("{:.2}", r.energy.total_pj() / 1e6),
                    format!("{}", r.stats.lite_reactivations),
                ]);
            }
        }
        runner.table(&table);
    }
    runner.line("Short timeslices revive page walks everywhere, but RMM_Lite recovers");
    runner.line("with a handful of range-table walks (one per VMA) instead of one walk");
    runner.line("per page — flush pressure widens its advantage.");
    runner.finish();
}
