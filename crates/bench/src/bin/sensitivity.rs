//! §6.2 sensitivity analysis: Lite's interval size (1–10 M instructions)
//! and random re-activation probability (1/8 – 1/128).

use eeat_bench::{Cli, Runner};
use eeat_core::{lite_sensitivity, Table};
use eeat_workloads::Workload;

fn main() {
    let cli = Cli::parse("Lite sensitivity (§6.2): interval size x re-activation probability");
    let mut runner = Runner::new("sensitivity", &cli, &[]);
    let intervals = [1_000_000u64, 2_000_000, 5_000_000, 10_000_000];
    let probs = [1.0 / 8.0, 1.0 / 32.0, 1.0 / 128.0];

    // A representative subset keeps the grid affordable; widen with
    // --workloads or deepen with --instructions.
    let default = [Workload::Astar, Workload::Mcf, Workload::CactusADM];

    for workload in cli.workloads(&default) {
        eprintln!("sweeping {workload}...");
        let points = lite_sensitivity(workload, cli.instructions, cli.seed, &intervals, &probs);
        let mut t = Table::new(
            &format!("Lite sensitivity — {workload} (TLB_Lite)"),
            &[
                "interval (M)",
                "reactivation p",
                "energy (uJ)",
                "L1 MPKI",
                "miss cycles",
            ],
        );
        for p in &points {
            t.add_row(&[
                format!("{}", p.interval_instructions / 1_000_000),
                format!("1/{:.0}", 1.0 / p.reactivation_prob),
                format!("{:.2}", p.result.energy.total_nj() / 1e3),
                format!("{:.2}", p.result.stats.l1_mpki()),
                format!("{}", p.result.cycles.total()),
            ]);
        }
        runner.table(&t);
    }
    runner.line("Paper: Lite performs slightly better with shorter intervals and lower");
    runner.line("re-activation probability (faster response, fewer forced re-enables).");
    runner.finish();
}
