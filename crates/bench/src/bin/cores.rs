//! Extension: multi-core, multi-tenant scaling. Every organization of the
//! catalog runs under the ASID-tagged multi-core driver at 1/2/4/8 cores
//! (two tenants per core, one THP demotion per quantum), reporting MPKI,
//! translation + coherence energy, and the shootdown-IPI rate — plus a
//! head-to-head of ASID retagging against flush-on-switch multiprogramming
//! on one core, the multi-core mode's reason to exist.
//!
//! Cells are independent simulations and run `EEAT_THREADS`-parallel
//! through the same work-stealing map as the experiment matrices; results
//! are bit-identical to a sequential run (CI diffs the two reports).
//! `EEAT_SERIES` attaches one `EpochSeries` per core and writes a
//! core-tagged JSONL sidecar per multi-core cell. A `LatencyObserver`
//! rides on every core unconditionally: the per-core translation-latency
//! table shows how shootdown-IPI stalls stretch the tail as cores scale,
//! and each core's distribution lands in the artifact's `distributions`
//! section keyed `cell/<w>/<config>/.../core<i>/lat/all`.

use eeat_bench::{series_bucket, Cli, Runner};
use eeat_core::{
    par, Config, MultiCoreParams, MultiCoreResult, MultiCoreSim, Org, Simulator, Table,
};
use eeat_energy::IpiBreakdown;
use eeat_obs::{per_core_jsonl, EpochSeries, LatencyHistogram, LatencyObserver};
use eeat_workloads::Workload;

/// Instructions per scheduling quantum (both modes switch at this period).
/// Short enough that an ASID-less core pays a visible refill tax per
/// flush; timeslices this size are what CPU-bound co-runners see.
const QUANTUM: u64 = 25_000;
/// Core counts of the scaling sweep.
const CORE_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One independent simulation cell.
#[derive(Clone, Copy)]
enum Cell {
    /// Single core, ASID-less multiprogramming: flush everything each
    /// quantum (`Simulator::set_flush_interval`).
    Flush { org: usize },
    /// Single core, two tenants, ASID retagging at each quantum boundary —
    /// the flush baseline's direct replacement.
    Asid { org: usize },
    /// The scaling sweep: `cores` cores, `2 * cores + 1` tenants (the odd
    /// tenant makes every tenant migrate between cores, so shootdowns have
    /// remote residents to fan out to), one huge page demoted per core per
    /// quantum.
    Scale { org: usize, cores: usize },
}

/// What a cell reports back to the (sequential) table builder.
struct CellOut {
    l1_mpki: f64,
    l2_mpki: f64,
    energy_pj: f64,
    ipi: IpiBreakdown,
    instructions: u64,
    series: Option<String>,
    /// One latency observer per core (one element for the 1-core cells).
    core_latency: Vec<LatencyObserver>,
}

fn multi_core(
    config: &Config,
    workload: Workload,
    cores: usize,
    tenants: usize,
    demotions: u64,
    cli: &Cli,
) -> CellOut {
    let params = MultiCoreParams {
        cores,
        tenants,
        quantum: QUANTUM,
        demotions_per_quantum: demotions,
    };
    let mut mc = MultiCoreSim::from_workload(config.clone(), workload, params, cli.seed);
    let per_core_budget = (cli.instructions / cores as u64).max(1);
    let bucket = series_bucket(per_core_budget);
    let mut taps: Vec<(Option<EpochSeries>, LatencyObserver)> = (0..cores)
        .map(|c| {
            let series = bucket.map(|b| {
                let sim = mc.simulator(c);
                let ways = sim
                    .hierarchy()
                    .l1_4k()
                    .map(|t| t.active_ways())
                    .unwrap_or(0);
                EpochSeries::new(0, b, ways, Some(sim.telemetry_energy_observer()))
            });
            (series, LatencyObserver::default())
        })
        .collect();
    let result = mc.run_with(per_core_budget, &mut taps);
    let (series_taps, core_latency): (Vec<_>, Vec<_>) = taps.into_iter().unzip();
    let series = bucket.map(|_| {
        let cores: Vec<EpochSeries> = series_taps.into_iter().flatten().collect();
        per_core_jsonl(&cores)
    });
    summarize(&result, series, core_latency)
}

fn summarize(
    result: &MultiCoreResult,
    series: Option<String>,
    core_latency: Vec<LatencyObserver>,
) -> CellOut {
    let l1_misses: u64 = result.per_core.iter().map(|c| c.run.stats.l1_misses).sum();
    let kilo = result.total_instructions() as f64 / 1000.0;
    CellOut {
        l1_mpki: l1_misses as f64 / kilo,
        l2_mpki: result.l2_mpki(),
        energy_pj: result
            .per_core
            .iter()
            .map(|c| c.run.energy.total_pj())
            .sum(),
        ipi: result.total_ipi(),
        instructions: result.total_instructions(),
        series,
        core_latency,
    }
}

fn flush_baseline(config: &Config, workload: Workload, cli: &Cli) -> CellOut {
    let mut sim = Simulator::from_workload(config.clone(), workload, cli.seed);
    sim.set_flush_interval(Some(QUANTUM));
    let mut latency = LatencyObserver::default();
    let r = sim.run_with_observer(cli.instructions, &mut latency);
    CellOut {
        l1_mpki: r.stats.l1_mpki(),
        l2_mpki: r.stats.l2_mpki(),
        energy_pj: r.energy.total_pj(),
        ipi: IpiBreakdown::default(),
        instructions: r.stats.instructions,
        series: None,
        core_latency: vec![latency],
    }
}

fn main() {
    let cli = Cli::parse("Extension: multi-core/multi-tenant scaling with ASID-tagged TLBs");
    let catalog: Vec<Config> = Org::all().iter().map(|o| o.config()).collect();
    let configs = cli.configs(&catalog);
    let mut runner = Runner::new("cores", &cli, &configs);

    let mut cells: Vec<Cell> = Vec::new();
    for org in 0..configs.len() {
        cells.push(Cell::Flush { org });
        cells.push(Cell::Asid { org });
        for &cores in &CORE_COUNTS {
            cells.push(Cell::Scale { org, cores });
        }
    }
    let threads = par::thread_count(cells.len(), cli.threads);

    let default = [Workload::Mcf];
    for w in cli.workloads(&default) {
        eprintln!(
            "running {w}: {} cells on {threads} threads at {} instructions each...",
            cells.len(),
            cli.instructions,
        );
        let results: Vec<CellOut> = par::parallel_map(&cells, threads, |&cell| match cell {
            Cell::Flush { org } => flush_baseline(&configs[org], w, &cli),
            Cell::Asid { org } => multi_core(&configs[org], w, 1, 2, 0, &cli),
            Cell::Scale { org, cores } => {
                multi_core(&configs[org], w, cores, 2 * cores + 1, 1, &cli)
            }
        });

        let mut switch = Table::new(
            &format!("{w}: context switch cost, flush-on-switch vs ASID retag (1 core)"),
            &[
                "config",
                "flush L1 MPKI",
                "ASID L1 MPKI",
                "flush L2 MPKI",
                "ASID L2 MPKI",
            ],
        );
        let mut scale = Table::new(
            &format!("{w}: core scaling (2N+1 tenants, 1 demotion/core/quantum)"),
            &[
                "config x cores",
                "L1 MPKI",
                "L2 MPKI",
                "energy (uJ)",
                "IPI energy (uJ)",
                "IPIs sent",
                "IPIs delivered",
                "shootdowns/Mi",
            ],
        );
        for (cell, out) in cells.iter().zip(&results) {
            match *cell {
                Cell::Flush { .. } => {}
                Cell::Asid { org } => {
                    // The flush baseline for the same org sits right before
                    // this cell in generation order.
                    let flush = &results[cells
                        .iter()
                        .position(|c| matches!(c, Cell::Flush { org: o } if *o == org))
                        .expect("flush cell generated first")];
                    switch.add_row(&[
                        configs[org].name.to_string(),
                        format!("{:.2}", flush.l1_mpki),
                        format!("{:.2}", out.l1_mpki),
                        format!("{:.3}", flush.l2_mpki),
                        format!("{:.3}", out.l2_mpki),
                    ]);
                }
                Cell::Scale { org, cores } => {
                    let mi = out.instructions as f64 / 1e6;
                    scale.add_row(&[
                        format!("{} x{cores}", configs[org].name),
                        format!("{:.2}", out.l1_mpki),
                        format!("{:.3}", out.l2_mpki),
                        format!("{:.2}", out.energy_pj / 1e6),
                        format!("{:.3}", out.ipi.energy_pj / 1e6),
                        format!("{}", out.ipi.ipis_sent),
                        format!("{}", out.ipi.ipis_delivered),
                        format!("{:.2}", out.ipi.ipis_delivered as f64 / mi),
                    ]);
                }
            }
        }
        runner.table(&switch);
        runner.table(&scale);

        // Per-core translation-latency tails: each core's histogram goes
        // into the artifact, the table shows the merged distribution plus
        // the p99 spread across cores (shootdown-IPI stalls land on the
        // cores resident with the victim tenant, so the spread widens as
        // tenants migrate).
        let mut lat = Table::new(
            &format!("{w}: translation latency tails per cell (cycles)"),
            &[
                "cell",
                "mean",
                "p50",
                "p99",
                "p999",
                "max",
                "core p99 spread",
            ],
        );
        for (cell, out) in cells.iter().zip(results) {
            let (label, key_mid) = match *cell {
                Cell::Flush { org } => (format!("{} flush", configs[org].name), "flush".into()),
                Cell::Asid { org } => (format!("{} asid", configs[org].name), "asid".into()),
                Cell::Scale { org, cores } => (
                    format!("{} x{cores}", configs[org].name),
                    format!("c{cores}"),
                ),
            };
            let org = match *cell {
                Cell::Flush { org } | Cell::Asid { org } | Cell::Scale { org, .. } => org,
            };
            let key = |suffix: &str| {
                format!("cell/{}/{}/{key_mid}/{suffix}", w.name(), configs[org].name)
            };
            let mut merged = LatencyHistogram::new();
            let mut p99 = (u64::MAX, 0u64);
            let mut core_latency = out.core_latency;
            let multi = core_latency.len() > 1;
            for (i, core) in core_latency.iter_mut().enumerate() {
                let h = core.merged();
                if multi {
                    runner.distribution(key(&format!("core{i}/lat/all")), h.summary_json(false));
                }
                p99 = (p99.0.min(h.percentile(0.99)), p99.1.max(h.percentile(0.99)));
                merged.merge(&h);
            }
            runner.distribution(key("lat/all"), merged.summary_json(false));
            lat.add_row(&[
                label,
                format!("{:.2}", merged.mean()),
                merged.percentile(0.50).to_string(),
                merged.percentile(0.99).to_string(),
                merged.percentile(0.999).to_string(),
                merged.max().to_string(),
                if multi {
                    (p99.1 - p99.0).to_string()
                } else {
                    "-".to_string()
                },
            ]);
            if let (Cell::Scale { org, cores }, Some(series)) = (cell, out.series) {
                runner.sidecar(
                    format!(
                        "cores.{}.{}.c{cores}.series.jsonl",
                        w.name(),
                        configs[*org].name
                    ),
                    series,
                );
            }
        }
        runner.table(&lat);
    }
    runner.line("Flushing on every switch revives compulsory misses each quantum; ASID");
    runner.line("retagging keeps every tenant's entries warm, so the switch cost drops to");
    runner.line("one retag (30 cycles) and translation MPKI returns to single-tenant");
    runner.line("levels. Shootdown IPIs scale with resident sharers, not core count.");
    runner.finish();
}
