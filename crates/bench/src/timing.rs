//! A minimal std-only timing harness (the workspace's criterion stand-in).
//!
//! Each target is auto-calibrated so one sample lasts roughly
//! `EEAT_BENCH_MS` milliseconds (default 20), then timed for
//! `EEAT_BENCH_SAMPLES` samples (default 10); the harness reports the
//! median and minimum per-iteration time. Medians over calibrated batches
//! are stable enough to spot regressions of a few percent without any
//! external dependency.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One measured result.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Target name as printed.
    pub name: String,
    /// Median per-iteration time across samples.
    pub median: Duration,
    /// Minimum per-iteration time across samples (least-noise estimate).
    pub min: Duration,
    /// Iterations per sample chosen by calibration.
    pub iters: u32,
}

/// The harness: owns the sample policy and collects [`Measurement`]s.
pub struct Harness {
    samples: usize,
    target_sample: Duration,
    results: Vec<Measurement>,
}

impl Default for Harness {
    fn default() -> Self {
        Self::new()
    }
}

impl Harness {
    /// Builds a harness configured from `EEAT_BENCH_SAMPLES` /
    /// `EEAT_BENCH_MS`.
    pub fn new() -> Self {
        let samples = std::env::var("EEAT_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10);
        let ms = std::env::var("EEAT_BENCH_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(20u64);
        Self {
            samples: samples.max(1),
            target_sample: Duration::from_millis(ms.max(1)),
            results: Vec::new(),
        }
    }

    /// Times `f`, calibrating the per-sample iteration count first.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        // Calibration run (also warms caches).
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (self.target_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;

        let mut per_iter: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                t.elapsed() / iters
            })
            .collect();
        per_iter.sort();
        self.record(name, per_iter, iters);
    }

    /// Times `routine` over fresh state from `setup`; setup cost is
    /// excluded. One iteration per sample — use for targets whose single
    /// run is already milliseconds (e.g. whole simulations).
    pub fn bench_batched<S, T>(
        &mut self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> T,
    ) {
        // Warm-up (not recorded).
        black_box(routine(setup()));
        let mut per_iter: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let state = setup();
                let t = Instant::now();
                black_box(routine(state));
                t.elapsed()
            })
            .collect();
        per_iter.sort();
        self.record(name, per_iter, 1);
    }

    fn record(&mut self, name: &str, sorted: Vec<Duration>, iters: u32) {
        let m = Measurement {
            name: name.to_string(),
            median: sorted[sorted.len() / 2],
            min: sorted[0],
            iters,
        };
        println!(
            "{:<40} median {:>12}  min {:>12}  ({} iters x {} samples)",
            m.name,
            fmt_duration(m.median),
            fmt_duration(m.min),
            m.iters,
            sorted.len(),
        );
        self.results.push(m);
    }

    /// All measurements taken so far.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }
}

/// Human-readable duration with an adaptive unit.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_measures_and_records() {
        let mut h = Harness {
            samples: 3,
            target_sample: Duration::from_micros(50),
            results: Vec::new(),
        };
        let mut acc = 0u64;
        h.bench("spin", || {
            for i in 0..100u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        h.bench_batched("batched", || vec![1u64; 64], |v| v.iter().sum::<u64>());
        assert_eq!(h.results().len(), 2);
        assert!(h.results()[0].median > Duration::ZERO);
        assert_eq!(h.results()[1].iters, 1);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00 us");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }
}
