//! The artifact-writing report runner every bench binary routes through.
//!
//! A [`Runner`] wraps one benchmark invocation: it stamps a
//! [`RunManifest`] at construction, captures every report line the binary
//! prints, harvests numeric table cells and matrix results into flat
//! metrics, and on [`Runner::finish`] writes
//!
//! * `results/<bench>.txt` — the captured text report, prefixed with the
//!   `# eeat-run` provenance line, and
//! * `results/<bench>.json` — the machine-readable
//!   [`RunArtifact`] (manifest + metrics + series index), the input to
//!   `report_diff`.
//!
//! Optional telemetry rides along per matrix cell: `EEAT_SERIES` attaches
//! an [`EpochSeries`] observer (per-epoch JSONL/CSV sidecars), `EEAT_TRACE`
//! a sampled [`TraceRing`] (flight-recorder JSONL), `EEAT_SPANS=1` a
//! [`SpanTracer`] (chrome://tracing `.trace.json` sidecars), and
//! `EEAT_HEARTBEAT` a [`Heartbeat`] (live JSONL progress records). All are
//! off by default. A [`LatencyObserver`] is *always* attached — its hot
//! path is a handful of integer bumps (the throughput bench gates its
//! overhead below 3%) — so every matrix bench gets per-cell translation
//! latency distributions in the artifact's `distributions` section and a
//! p50/p99/p999 tails table next to its means.

use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use eeat_core::{provenance_header, Config, ConfigRun, Table, WorkloadResults};
use eeat_obs::{
    EpochSeries, Heartbeat, Json, LatencyObserver, RunArtifact, RunManifest, SpanTracer, TraceRing,
};
use eeat_workloads::Workload;

use crate::Cli;

/// Captures a benchmark's report and writes its `results/` artifacts.
pub struct Runner {
    start: Instant,
    artifact: RunArtifact,
    captured: String,
    sidecars: Vec<(String, String)>,
    latency_cells: Vec<(String, String, LatencyObserver)>,
}

impl Runner {
    /// Creates a runner for benchmark `name`, fingerprinting `configs`
    /// (pass `&[]` for benches without a configuration matrix). Prints the
    /// provenance line as the report's first line.
    pub fn new(name: &str, cli: &Cli, configs: &[Config]) -> Self {
        Self::with_params(
            name,
            cli.seed,
            cli.instructions,
            cli.threads.unwrap_or(0),
            configs,
        )
    }

    /// [`Runner::new`] for binaries with their own argument handling (the
    /// throughput harness): explicit seed/budget/threads instead of a
    /// [`Cli`].
    pub fn with_params(
        name: &str,
        seed: u64,
        instructions: u64,
        threads: usize,
        configs: &[Config],
    ) -> Self {
        let descriptions: Vec<String> = configs.iter().map(|c| format!("{c:?}")).collect();
        let manifest = RunManifest::discover(name, &descriptions, seed, instructions, threads);
        let mut runner = Self {
            start: Instant::now(),
            artifact: RunArtifact::new(manifest),
            captured: String::new(),
            sidecars: Vec::new(),
            latency_cells: Vec::new(),
        };
        let header = provenance_header(&runner.artifact.manifest.summary_fields());
        runner.line(&header);
        runner
    }

    /// The manifest stamped into every artifact of this run.
    pub fn manifest(&self) -> &RunManifest {
        &self.artifact.manifest
    }

    /// Prints one report line (and captures it for `results/<bench>.txt`).
    pub fn line(&mut self, text: &str) {
        println!("{text}");
        self.captured.push_str(text);
        self.captured.push('\n');
    }

    /// Prints a blank report line.
    pub fn blank(&mut self) {
        self.line("");
    }

    /// Prints a table (exactly like `println!("{table}")`: the rendered
    /// table plus a trailing blank line) and harvests every numeric cell
    /// as a `table/<title>/<row>/<column>` metric.
    pub fn table(&mut self, table: &Table) {
        self.line(&table.to_string());
        let title = slug(table.title());
        let headers = table.headers();
        let mut seen: Vec<String> = Vec::new();
        for row in table.rows() {
            // Repeated row labels (sweep tables) get an ordinal suffix so
            // metric keys stay unique.
            let base = slug(&row[0]);
            let occurrence = seen.iter().filter(|k| **k == base).count();
            seen.push(base.clone());
            let row_key = if occurrence == 0 {
                base
            } else {
                format!("{base}_{}", occurrence + 1)
            };
            for (header, cell) in headers.iter().zip(row).skip(1) {
                if let Some(value) = numeric(cell) {
                    self.metric(format!("table/{title}/{row_key}/{}", slug(header)), value);
                }
            }
        }
    }

    /// Records one metric in the artifact.
    pub fn metric(&mut self, key: impl Into<String>, value: f64) {
        self.artifact.push_metric(key, value);
    }

    /// Records one entry in the artifact's `distributions` section — for
    /// bins that run outside [`run_matrix`](Self::run_matrix) (the
    /// multi-core driver's per-core histograms) but still want their tails
    /// diffable by `report_diff`.
    pub fn distribution(&mut self, key: impl Into<String>, summary: Json) {
        self.artifact.push_distribution(key, summary);
    }

    /// Registers a sidecar file written next to the artifact on
    /// [`finish`](Self::finish).
    pub fn sidecar(&mut self, file_name: impl Into<String>, contents: String) {
        let file_name = file_name.into();
        self.artifact.series.push(file_name.clone());
        self.sidecars.push((file_name, contents));
    }

    /// Runs the workload × configuration matrix with telemetry attached:
    /// like `Cli::run_matrix`, plus per-cell headline metrics in the
    /// artifact, and — when `EEAT_SERIES` / `EEAT_TRACE` are set —
    /// per-cell series and trace sidecars.
    pub fn run_matrix(
        &mut self,
        cli: &Cli,
        workloads: &[Workload],
        configs: &[Config],
    ) -> Vec<WorkloadResults> {
        eprintln!(
            "running {} workloads x {} configs at {} instructions...",
            workloads.len(),
            configs.len(),
            cli.instructions,
        );
        let bucket = series_bucket(cli.instructions);
        let bench_label = self.artifact.manifest.bench.clone();
        let cells = cli
            .experiment()
            .run_matrix_with(workloads, configs, |sim, instructions| {
                let series = bucket.map(|b| {
                    let ways = sim
                        .hierarchy()
                        .l1_4k()
                        .map(|t| t.active_ways())
                        .unwrap_or(0);
                    EpochSeries::new(0, b, ways, Some(sim.telemetry_energy_observer()))
                });
                // Heartbeat lines from parallel cells interleave in the
                // shared append-mode file; the label de-multiplexes them.
                let heartbeat =
                    Heartbeat::from_env(&format!("{bench_label}.{}", sim.config().name));
                let mut extra = (
                    (series, TraceRing::from_env()),
                    (
                        LatencyObserver::default(),
                        (SpanTracer::from_env(), heartbeat),
                    ),
                );
                let result = sim.run_with_observer(instructions, &mut extra);
                let ((series, trace), (latency, (spans, mut heartbeat))) = extra;
                if let Some(hb) = &mut heartbeat {
                    hb.finish();
                }
                (result, series, trace, latency, spans)
            });

        let bench = self.artifact.manifest.bench.clone();
        let mut out = Vec::with_capacity(workloads.len());
        for (&workload, row) in workloads.iter().zip(cells) {
            let mut runs = Vec::with_capacity(configs.len());
            for (config, (result, series, trace, mut latency, spans)) in configs.iter().zip(row) {
                self.harvest_cell(workload.name(), config.name, &result);
                let cell = format!("{bench}.{}.{}", workload.name(), config.name);
                // Distributions: one summary per outcome class, plus the
                // merged "all" entry with its sparse buckets for CDFs.
                let dist_key =
                    |suffix: &str| format!("cell/{}/{}/lat/{suffix}", workload.name(), config.name);
                for (class, hist) in latency.class_histograms() {
                    if hist.count() > 0 {
                        self.artifact
                            .push_distribution(dist_key(class.name()), hist.summary_json(false));
                    }
                }
                self.artifact
                    .push_distribution(dist_key("all"), latency.merged().summary_json(true));
                self.latency_cells.push((
                    workload.name().to_string(),
                    config.name.to_string(),
                    latency,
                ));
                if let Some(spans) = spans {
                    self.sidecar(format!("{cell}.trace.json"), spans.to_chrome_json(&cell));
                }
                if let Some(series) = series {
                    let manifest_line = format!(
                        "{{\"schema\":\"eeat-series/v1\",\"manifest\":{}}}\n",
                        self.artifact.manifest.to_json().to_compact()
                    );
                    self.sidecar(
                        format!("{cell}.series.jsonl"),
                        manifest_line + &series.to_jsonl(),
                    );
                    let header = provenance_header(&self.artifact.manifest.summary_fields());
                    self.sidecar(
                        format!("{cell}.series.csv"),
                        header + "\n" + &series.to_csv(),
                    );
                }
                if let Some(trace) = trace {
                    self.sidecar(format!("{cell}.trace.jsonl"), trace.dump_jsonl());
                }
                runs.push(ConfigRun {
                    config_name: config.name,
                    result,
                });
            }
            out.push(WorkloadResults { workload, runs });
        }
        let tails = self.tails_table();
        self.table(&tails);
        out
    }

    /// The per-cell latency observers captured by the last
    /// [`run_matrix`](Self::run_matrix), as `(workload, config, observer)` —
    /// for bins that print their own class-level breakdowns.
    pub fn latency_cells(&mut self) -> &mut [(String, String, LatencyObserver)] {
        &mut self.latency_cells
    }

    /// The p50/p99/p999 table printed next to every matrix bench's means.
    fn tails_table(&mut self) -> Table {
        let mut table = Table::new(
            "Translation latency tails (cycles)",
            &["cell", "mean", "p50", "p90", "p99", "p999", "max"],
        );
        for (workload, config, latency) in &mut self.latency_cells {
            let all = latency.merged();
            table.add_row(&[
                format!("{workload}/{config}"),
                format!("{:.2}", all.mean()),
                all.percentile(0.50).to_string(),
                all.percentile(0.90).to_string(),
                all.percentile(0.99).to_string(),
                all.percentile(0.999).to_string(),
                all.max().to_string(),
            ]);
        }
        table
    }

    fn harvest_cell(&mut self, workload: &str, config: &str, result: &eeat_core::RunResult) {
        let key = |metric: &str| format!("cell/{workload}/{config}/{metric}");
        let stats = &result.stats;
        self.metric(key("l1_mpki"), stats.l1_mpki());
        self.metric(key("l2_mpki"), stats.l2_mpki());
        self.metric(key("accesses"), stats.accesses as f64);
        self.metric(key("l1_misses"), stats.l1_misses as f64);
        self.metric(key("l2_misses"), stats.l2_misses as f64);
        self.metric(key("walk_refs"), stats.walk_memory_refs as f64);
        self.metric(key("range_walks"), stats.range_table_walks as f64);
        self.metric(key("lite_intervals"), stats.lite_intervals as f64);
        self.metric(key("lite_reactivations"), stats.lite_reactivations as f64);
        self.metric(key("energy_pj"), result.energy.total_pj());
        self.metric(key("miss_cycles"), result.cycles.total() as f64);
    }

    /// Stamps the wall time and writes `results/<bench>.txt`,
    /// `results/<bench>.json`, and every registered sidecar. The directory
    /// defaults to `results/` and is overridable with `EEAT_RESULTS`.
    ///
    /// # Panics
    ///
    /// Panics when the results directory or a file cannot be written.
    pub fn finish(mut self) {
        self.artifact.manifest.stamp_wall(self.start);
        let dir = results_dir();
        fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("cannot create {}: {e}", dir.display()));
        let bench = self.artifact.manifest.bench.clone();
        let write = |path: PathBuf, contents: &str| {
            fs::write(&path, contents)
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        };
        write(dir.join(format!("{bench}.txt")), &self.captured);
        write(
            dir.join(format!("{bench}.json")),
            &self.artifact.to_pretty(),
        );
        for (file_name, contents) in &self.sidecars {
            write(dir.join(file_name), contents);
        }
        eprintln!(
            "wrote {}/{bench}.txt and {}/{bench}.json ({} metrics, {} sidecars)",
            dir.display(),
            dir.display(),
            self.artifact.metrics.len(),
            self.sidecars.len(),
        );
    }
}

/// The per-epoch series bucket from `EEAT_SERIES`: unset or `0` disables,
/// `1` samples 20 buckets over the budget (the Figure 4 granularity), any
/// other integer is the bucket size in instructions.
/// The `EEAT_SERIES` bucket size for an instruction budget: unset/`0`
/// disables telemetry, `1` picks 20 buckets per run, anything else is the
/// bucket size in instructions.
pub fn series_bucket(instructions: u64) -> Option<u64> {
    let raw = std::env::var("EEAT_SERIES").ok()?;
    match raw.trim() {
        "" | "0" => None,
        "1" => Some((instructions / 20).max(1)),
        other => other.parse().ok().filter(|&b| b > 0),
    }
}

fn results_dir() -> PathBuf {
    std::env::var("EEAT_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

/// Lowercases and collapses every non-alphanumeric run to one `_`, so
/// table titles and row labels become stable metric-key segments.
fn slug(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut pending_sep = false;
    for c in text.chars() {
        if c.is_ascii_alphanumeric() {
            if pending_sep && !out.is_empty() {
                out.push('_');
            }
            pending_sep = false;
            out.push(c.to_ascii_lowercase());
        } else {
            pending_sep = true;
        }
    }
    out
}

/// Parses a table cell as a number, tolerating the harness's decorations:
/// a leading `+`, a trailing `%` or `x`, and `_` digit separators.
fn numeric(cell: &str) -> Option<f64> {
    let mut text = cell.trim();
    text = text.strip_suffix('%').unwrap_or(text);
    text = text.strip_suffix('x').unwrap_or(text);
    text = text.strip_prefix('+').unwrap_or(text);
    let text = text.replace('_', "");
    if text.is_empty() {
        return None;
    }
    text.trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slugs_are_stable_key_segments() {
        assert_eq!(slug("Figure 2: L1 MPKI"), "figure_2_l1_mpki");
        assert_eq!(slug("RMM_Lite"), "rmm_lite");
        assert_eq!(slug("pJ/access"), "pj_access");
        assert_eq!(slug("  edge  "), "edge");
    }

    #[test]
    fn numeric_tolerates_report_decorations() {
        assert_eq!(numeric("12.5"), Some(12.5));
        assert_eq!(numeric("23.4%"), Some(23.4));
        assert_eq!(numeric("1.08x"), Some(1.08));
        assert_eq!(numeric("+0.3"), Some(0.3));
        assert_eq!(numeric("5_000"), Some(5000.0));
        assert_eq!(numeric("mcf"), None);
        assert_eq!(numeric(""), None);
    }

    #[test]
    fn series_bucket_scales_with_budget() {
        // Reads process-global env; exercise only the unset path plus the
        // pure arithmetic to avoid cross-test races.
        if std::env::var("EEAT_SERIES").is_err() {
            assert_eq!(series_bucket(20_000_000), None);
        }
    }
}
