//! The artifact-writing report runner every bench binary routes through.
//!
//! A [`Runner`] wraps one benchmark invocation: it stamps a
//! [`RunManifest`] at construction, captures every report line the binary
//! prints, harvests numeric table cells and matrix results into flat
//! metrics, and on [`Runner::finish`] writes
//!
//! * `results/<bench>.txt` — the captured text report, prefixed with the
//!   `# eeat-run` provenance line, and
//! * `results/<bench>.json` — the machine-readable
//!   [`RunArtifact`] (manifest + metrics + series index), the input to
//!   `report_diff`.
//!
//! Optional telemetry rides along per matrix cell: `EEAT_SERIES` attaches
//! an [`EpochSeries`] observer (per-epoch JSONL/CSV sidecars) and
//! `EEAT_TRACE` a sampled [`TraceRing`] (flight-recorder JSONL). Both are
//! off by default, so the hot path stays untouched.

use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use eeat_core::{provenance_header, Config, ConfigRun, Table, WorkloadResults};
use eeat_obs::{EpochSeries, RunArtifact, RunManifest, TraceRing};
use eeat_workloads::Workload;

use crate::Cli;

/// Captures a benchmark's report and writes its `results/` artifacts.
pub struct Runner {
    start: Instant,
    artifact: RunArtifact,
    captured: String,
    sidecars: Vec<(String, String)>,
}

impl Runner {
    /// Creates a runner for benchmark `name`, fingerprinting `configs`
    /// (pass `&[]` for benches without a configuration matrix). Prints the
    /// provenance line as the report's first line.
    pub fn new(name: &str, cli: &Cli, configs: &[Config]) -> Self {
        Self::with_params(
            name,
            cli.seed,
            cli.instructions,
            cli.threads.unwrap_or(0),
            configs,
        )
    }

    /// [`Runner::new`] for binaries with their own argument handling (the
    /// throughput harness): explicit seed/budget/threads instead of a
    /// [`Cli`].
    pub fn with_params(
        name: &str,
        seed: u64,
        instructions: u64,
        threads: usize,
        configs: &[Config],
    ) -> Self {
        let descriptions: Vec<String> = configs.iter().map(|c| format!("{c:?}")).collect();
        let manifest = RunManifest::discover(name, &descriptions, seed, instructions, threads);
        let mut runner = Self {
            start: Instant::now(),
            artifact: RunArtifact::new(manifest),
            captured: String::new(),
            sidecars: Vec::new(),
        };
        let header = provenance_header(&runner.artifact.manifest.summary_fields());
        runner.line(&header);
        runner
    }

    /// The manifest stamped into every artifact of this run.
    pub fn manifest(&self) -> &RunManifest {
        &self.artifact.manifest
    }

    /// Prints one report line (and captures it for `results/<bench>.txt`).
    pub fn line(&mut self, text: &str) {
        println!("{text}");
        self.captured.push_str(text);
        self.captured.push('\n');
    }

    /// Prints a blank report line.
    pub fn blank(&mut self) {
        self.line("");
    }

    /// Prints a table (exactly like `println!("{table}")`: the rendered
    /// table plus a trailing blank line) and harvests every numeric cell
    /// as a `table/<title>/<row>/<column>` metric.
    pub fn table(&mut self, table: &Table) {
        self.line(&table.to_string());
        let title = slug(table.title());
        let headers = table.headers();
        let mut seen: Vec<String> = Vec::new();
        for row in table.rows() {
            // Repeated row labels (sweep tables) get an ordinal suffix so
            // metric keys stay unique.
            let base = slug(&row[0]);
            let occurrence = seen.iter().filter(|k| **k == base).count();
            seen.push(base.clone());
            let row_key = if occurrence == 0 {
                base
            } else {
                format!("{base}_{}", occurrence + 1)
            };
            for (header, cell) in headers.iter().zip(row).skip(1) {
                if let Some(value) = numeric(cell) {
                    self.metric(format!("table/{title}/{row_key}/{}", slug(header)), value);
                }
            }
        }
    }

    /// Records one metric in the artifact.
    pub fn metric(&mut self, key: impl Into<String>, value: f64) {
        self.artifact.push_metric(key, value);
    }

    /// Registers a sidecar file written next to the artifact on
    /// [`finish`](Self::finish).
    pub fn sidecar(&mut self, file_name: impl Into<String>, contents: String) {
        let file_name = file_name.into();
        self.artifact.series.push(file_name.clone());
        self.sidecars.push((file_name, contents));
    }

    /// Runs the workload × configuration matrix with telemetry attached:
    /// like `Cli::run_matrix`, plus per-cell headline metrics in the
    /// artifact, and — when `EEAT_SERIES` / `EEAT_TRACE` are set —
    /// per-cell series and trace sidecars.
    pub fn run_matrix(
        &mut self,
        cli: &Cli,
        workloads: &[Workload],
        configs: &[Config],
    ) -> Vec<WorkloadResults> {
        eprintln!(
            "running {} workloads x {} configs at {} instructions...",
            workloads.len(),
            configs.len(),
            cli.instructions,
        );
        let bucket = series_bucket(cli.instructions);
        let cells = cli
            .experiment()
            .run_matrix_with(workloads, configs, |sim, instructions| {
                let series = bucket.map(|b| {
                    let ways = sim
                        .hierarchy()
                        .l1_4k()
                        .map(|t| t.active_ways())
                        .unwrap_or(0);
                    EpochSeries::new(0, b, ways, Some(sim.telemetry_energy_observer()))
                });
                let mut extra = (series, TraceRing::from_env());
                let result = sim.run_with_observer(instructions, &mut extra);
                (result, extra.0, extra.1)
            });

        let bench = self.artifact.manifest.bench.clone();
        let mut out = Vec::with_capacity(workloads.len());
        for (&workload, row) in workloads.iter().zip(cells) {
            let mut runs = Vec::with_capacity(configs.len());
            for (config, (result, series, trace)) in configs.iter().zip(row) {
                self.harvest_cell(workload.name(), config.name, &result);
                let cell = format!("{bench}.{}.{}", workload.name(), config.name);
                if let Some(series) = series {
                    let manifest_line = format!(
                        "{{\"schema\":\"eeat-series/v1\",\"manifest\":{}}}\n",
                        self.artifact.manifest.to_json().to_compact()
                    );
                    self.sidecar(
                        format!("{cell}.series.jsonl"),
                        manifest_line + &series.to_jsonl(),
                    );
                    let header = provenance_header(&self.artifact.manifest.summary_fields());
                    self.sidecar(
                        format!("{cell}.series.csv"),
                        header + "\n" + &series.to_csv(),
                    );
                }
                if let Some(trace) = trace {
                    self.sidecar(format!("{cell}.trace.jsonl"), trace.dump_jsonl());
                }
                runs.push(ConfigRun {
                    config_name: config.name,
                    result,
                });
            }
            out.push(WorkloadResults { workload, runs });
        }
        out
    }

    fn harvest_cell(&mut self, workload: &str, config: &str, result: &eeat_core::RunResult) {
        let key = |metric: &str| format!("cell/{workload}/{config}/{metric}");
        let stats = &result.stats;
        self.metric(key("l1_mpki"), stats.l1_mpki());
        self.metric(key("l2_mpki"), stats.l2_mpki());
        self.metric(key("accesses"), stats.accesses as f64);
        self.metric(key("l1_misses"), stats.l1_misses as f64);
        self.metric(key("l2_misses"), stats.l2_misses as f64);
        self.metric(key("walk_refs"), stats.walk_memory_refs as f64);
        self.metric(key("range_walks"), stats.range_table_walks as f64);
        self.metric(key("lite_intervals"), stats.lite_intervals as f64);
        self.metric(key("lite_reactivations"), stats.lite_reactivations as f64);
        self.metric(key("energy_pj"), result.energy.total_pj());
        self.metric(key("miss_cycles"), result.cycles.total() as f64);
    }

    /// Stamps the wall time and writes `results/<bench>.txt`,
    /// `results/<bench>.json`, and every registered sidecar. The directory
    /// defaults to `results/` and is overridable with `EEAT_RESULTS`.
    ///
    /// # Panics
    ///
    /// Panics when the results directory or a file cannot be written.
    pub fn finish(mut self) {
        self.artifact.manifest.stamp_wall(self.start);
        let dir = results_dir();
        fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("cannot create {}: {e}", dir.display()));
        let bench = self.artifact.manifest.bench.clone();
        let write = |path: PathBuf, contents: &str| {
            fs::write(&path, contents)
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        };
        write(dir.join(format!("{bench}.txt")), &self.captured);
        write(
            dir.join(format!("{bench}.json")),
            &self.artifact.to_pretty(),
        );
        for (file_name, contents) in &self.sidecars {
            write(dir.join(file_name), contents);
        }
        eprintln!(
            "wrote {}/{bench}.txt and {}/{bench}.json ({} metrics, {} sidecars)",
            dir.display(),
            dir.display(),
            self.artifact.metrics.len(),
            self.sidecars.len(),
        );
    }
}

/// The per-epoch series bucket from `EEAT_SERIES`: unset or `0` disables,
/// `1` samples 20 buckets over the budget (the Figure 4 granularity), any
/// other integer is the bucket size in instructions.
/// The `EEAT_SERIES` bucket size for an instruction budget: unset/`0`
/// disables telemetry, `1` picks 20 buckets per run, anything else is the
/// bucket size in instructions.
pub fn series_bucket(instructions: u64) -> Option<u64> {
    let raw = std::env::var("EEAT_SERIES").ok()?;
    match raw.trim() {
        "" | "0" => None,
        "1" => Some((instructions / 20).max(1)),
        other => other.parse().ok().filter(|&b| b > 0),
    }
}

fn results_dir() -> PathBuf {
    std::env::var("EEAT_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

/// Lowercases and collapses every non-alphanumeric run to one `_`, so
/// table titles and row labels become stable metric-key segments.
fn slug(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut pending_sep = false;
    for c in text.chars() {
        if c.is_ascii_alphanumeric() {
            if pending_sep && !out.is_empty() {
                out.push('_');
            }
            pending_sep = false;
            out.push(c.to_ascii_lowercase());
        } else {
            pending_sep = true;
        }
    }
    out
}

/// Parses a table cell as a number, tolerating the harness's decorations:
/// a leading `+`, a trailing `%` or `x`, and `_` digit separators.
fn numeric(cell: &str) -> Option<f64> {
    let mut text = cell.trim();
    text = text.strip_suffix('%').unwrap_or(text);
    text = text.strip_suffix('x').unwrap_or(text);
    text = text.strip_prefix('+').unwrap_or(text);
    let text = text.replace('_', "");
    if text.is_empty() {
        return None;
    }
    text.trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slugs_are_stable_key_segments() {
        assert_eq!(slug("Figure 2: L1 MPKI"), "figure_2_l1_mpki");
        assert_eq!(slug("RMM_Lite"), "rmm_lite");
        assert_eq!(slug("pJ/access"), "pj_access");
        assert_eq!(slug("  edge  "), "edge");
    }

    #[test]
    fn numeric_tolerates_report_decorations() {
        assert_eq!(numeric("12.5"), Some(12.5));
        assert_eq!(numeric("23.4%"), Some(23.4));
        assert_eq!(numeric("1.08x"), Some(1.08));
        assert_eq!(numeric("+0.3"), Some(0.3));
        assert_eq!(numeric("5_000"), Some(5000.0));
        assert_eq!(numeric("mcf"), None);
        assert_eq!(numeric(""), None);
    }

    #[test]
    fn series_bucket_scales_with_budget() {
        // Reads process-global env; exercise only the unset path plus the
        // pure arithmetic to avoid cross-test races.
        if std::env::var("EEAT_SERIES").is_err() {
            assert_eq!(series_bucket(20_000_000), None);
        }
    }
}
