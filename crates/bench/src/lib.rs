//! Shared plumbing for the benchmark harness.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §5 for the index) and scales with two environment
//! variables:
//!
//! * `EEAT_INSTRUCTIONS` — instructions simulated per (workload, config)
//!   run. Default 20 000 000. The paper uses 50 G; the synthetic models
//!   reach steady state well before 20 M, so the default keeps a full
//!   matrix under a minute while preserving every reported trend.
//! * `EEAT_SEED` — the deterministic seed shared by the OS layout and the
//!   trace generator. Default 42.

pub mod cli;
pub mod runner;
pub mod timing;

use eeat_core::Experiment;

pub use cli::{baseline, Cli};
pub use runner::{series_bucket, Runner};

/// Reads the instruction budget from `EEAT_INSTRUCTIONS` (default 20 M).
pub fn instruction_budget() -> u64 {
    std::env::var("EEAT_INSTRUCTIONS")
        .ok()
        .and_then(|v| v.replace('_', "").parse().ok())
        .unwrap_or(20_000_000)
}

/// Reads the seed from `EEAT_SEED` (default 42).
pub fn seed() -> u64 {
    std::env::var("EEAT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42)
}

/// An [`Experiment`] configured from the environment.
pub fn experiment() -> Experiment {
    Experiment::new()
        .with_instructions(instruction_budget())
        .with_seed(seed())
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}", x * 100.0)
}

/// Formats a normalized value with two decimals.
pub fn norm(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        // Avoid mutating the environment (tests run in parallel): the
        // defaults apply when the variables are unset.
        if std::env::var("EEAT_INSTRUCTIONS").is_err() {
            assert_eq!(instruction_budget(), 20_000_000);
        }
        if std::env::var("EEAT_SEED").is_err() {
            assert_eq!(seed(), 42);
        }
    }

    #[test]
    fn formatting() {
        assert_eq!(pct(0.234), "23.4");
        assert_eq!(norm(1.0), "1.00");
    }
}
