//! The organization registry and the run-artifact pipeline stay in sync:
//! every registered organization's name survives an `eeat-run-artifact/v1`
//! round trip back to the same configuration hash, and every one produces
//! a cell when the experiment matrix runs over `Config::all_registered()`.

use eeat_core::{Config, Experiment, Org};
use eeat_obs::{config_hash, json, validate, RunArtifact, RunManifest};
use eeat_workloads::Workload;

const SEED: u64 = 42;
const INSTRUCTIONS: u64 = 1_000_000;

#[test]
fn every_org_round_trips_through_the_artifact_schema() {
    // Hermetic manifest discovery: no git/rustc subprocesses.
    std::env::set_var("EEAT_COMMIT", "0000000");
    std::env::set_var("EEAT_RUSTC", "rustc 0.0.0-test");
    for org in Org::all() {
        let descriptions = vec![format!("{:?}", org.config())];
        let manifest = RunManifest::discover(org.name(), &descriptions, SEED, INSTRUCTIONS, 1);
        let artifact = RunArtifact::new(manifest);

        let text = artifact.to_pretty();
        let doc = json::parse(&text).expect("artifact is well-formed JSON");
        assert!(
            validate(&doc).is_empty(),
            "{}: artifact violates eeat-run-artifact/v1",
            org.name()
        );

        // Name → registry → recomputed hash must land on the same value
        // the artifact was stamped with, so a report consumer can resolve
        // an org from an artifact and verify it ran the right config.
        let back = RunArtifact::parse(&text).expect("artifact parses back");
        let resolved = Org::by_name(&back.manifest.bench)
            .unwrap_or_else(|| panic!("{} not resolvable from artifact", back.manifest.bench));
        let recomputed = config_hash(
            &[format!("{:?}", resolved.config())],
            back.manifest.seed,
            back.manifest.instructions,
        );
        assert_eq!(
            recomputed,
            back.manifest.config_hash,
            "{}: config hash drifted across the round trip",
            org.name()
        );
    }
    std::env::remove_var("EEAT_COMMIT");
    std::env::remove_var("EEAT_RUSTC");
}

#[test]
fn every_org_appears_in_the_experiment_matrix() {
    let configs = Config::all_registered();
    let results = Experiment::new()
        .with_instructions(200_000)
        .with_seed(SEED)
        .with_threads(2)
        .run_matrix(&[Workload::by_name("mcf").expect("catalog")], &configs);

    assert_eq!(results.len(), 1);
    let runs = &results[0].runs;
    assert_eq!(runs.len(), configs.len());
    for org in Org::all() {
        let run = runs
            .iter()
            .find(|r| r.config_name == org.name())
            .unwrap_or_else(|| panic!("{} missing from the matrix", org.name()));
        assert!(
            run.result.stats.accesses > 0,
            "{} produced an empty run",
            org.name()
        );
    }
}
