//! Criterion microbenchmarks of the simulator's building blocks, plus
//! ablation benches for the design choices DESIGN.md calls out (true-LRU
//! cost, range-check vs tag-check lookup, walk caching).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use eeat_core::{Config, Simulator};
use eeat_paging::{MmuCaches, PageTable, PageWalker};
use eeat_tlb::{PageTranslation, RangeTlb, SetAssocTlb};
use eeat_types::{PageSize, Pfn, PhysAddr, RangeTranslation, VirtAddr, VirtRange, Vpn};
use eeat_workloads::Workload;
use std::hint::black_box;

fn bench_set_assoc_lookup(c: &mut Criterion) {
    let mut tlb = SetAssocTlb::new("bench", 64, 4, PageSize::Size4K);
    for vpn in 0..64u64 {
        tlb.insert(PageTranslation::new(
            Vpn::new(vpn),
            Pfn::new(vpn),
            PageSize::Size4K,
        ));
    }
    let mut group = c.benchmark_group("tlb");
    group.throughput(Throughput::Elements(64));
    group.bench_function("set_assoc_lookup_hit", |b| {
        b.iter(|| {
            for vpn in 0..64u64 {
                black_box(tlb.lookup(Vpn::new(vpn).base_addr()));
            }
        })
    });
    // Ablation: the same structure searched at 1 active way (Lite's
    // minimum) — shows the model cost is flat while the *energy* model is
    // what changes.
    tlb.set_active_ways(1);
    group.bench_function("set_assoc_lookup_1way", |b| {
        b.iter(|| {
            for vpn in 0..64u64 {
                black_box(tlb.lookup(Vpn::new(vpn).base_addr()));
            }
        })
    });
    group.finish();
}

fn bench_range_tlb_lookup(c: &mut Criterion) {
    let mut tlb = RangeTlb::new("bench", 32);
    for i in 0..32u64 {
        tlb.insert(RangeTranslation::new(
            VirtRange::new(VirtAddr::new(i << 30), 1 << 29),
            PhysAddr::new((i + 100) << 30),
        ));
    }
    c.bench_function("range_tlb_lookup", |b| {
        b.iter(|| {
            for i in 0..32u64 {
                black_box(tlb.lookup(VirtAddr::new((i << 30) + 12345)));
            }
        })
    });
}

fn bench_page_walk(c: &mut Criterion) {
    let mut pt = PageTable::new();
    for vpn in 0..4096u64 {
        pt.map(PageTranslation::new(
            Vpn::new(vpn),
            Pfn::new(vpn),
            PageSize::Size4K,
        ))
        .unwrap();
    }
    let mut group = c.benchmark_group("walker");
    // Warm walks: the PDE cache serves repeated locality.
    group.bench_function("walk_warm", |b| {
        let mut walker = PageWalker::new(MmuCaches::sandy_bridge());
        b.iter(|| {
            for vpn in 0..64u64 {
                black_box(walker.walk(&pt, Vpn::new(vpn).base_addr()));
            }
        })
    });
    // Ablation: walks with the MMU caches flushed every round (the
    // cost/benefit of the paging-structure caches).
    group.bench_function("walk_cold", |b| {
        let mut walker = PageWalker::new(MmuCaches::sandy_bridge());
        b.iter(|| {
            walker.caches_mut().flush();
            for vpn in (0..4096u64).step_by(64) {
                black_box(walker.walk(&pt, Vpn::new(vpn).base_addr()));
            }
        })
    });
    group.finish();
}

fn bench_simulator_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    for (name, config) in [
        ("step_thp", Config::thp()),
        ("step_tlb_lite", Config::tlb_lite()),
        ("step_rmm_lite", Config::rmm_lite()),
    ] {
        group.throughput(Throughput::Elements(100_000));
        group.bench_function(name, |b| {
            b.iter_batched(
                || Simulator::from_workload(config.clone(), Workload::Omnetpp, 3),
                |mut sim| black_box(sim.run(100_000 * 3)), // ~100k accesses
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = components;
    config = Criterion::default();
    targets =
        bench_set_assoc_lookup,
        bench_range_tlb_lookup,
        bench_page_walk,
        bench_simulator_throughput,
}
criterion_main!(components);
