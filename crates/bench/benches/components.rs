//! Std-only microbenchmarks of the simulator's building blocks, plus
//! ablation benches for the design choices DESIGN.md calls out (true-LRU
//! cost, range-check vs tag-check lookup, walk caching).

use eeat_bench::timing::Harness;
use eeat_core::{Config, Simulator};
use eeat_paging::{MmuCaches, PageTable, PageWalker};
use eeat_tlb::{PageTranslation, RangeTlb, SetAssocTlb};
use eeat_types::{PageSize, Pfn, PhysAddr, RangeTranslation, VirtAddr, VirtRange, Vpn};
use eeat_workloads::Workload;
use std::hint::black_box;

fn bench_set_assoc_lookup(h: &mut Harness) {
    let mut tlb = SetAssocTlb::new("bench", 64, 4, PageSize::Size4K);
    for vpn in 0..64u64 {
        tlb.insert(PageTranslation::new(
            Vpn::new(vpn),
            Pfn::new(vpn),
            PageSize::Size4K,
        ));
    }
    h.bench("tlb/set_assoc_lookup_hit", || {
        for vpn in 0..64u64 {
            black_box(tlb.lookup(Vpn::new(vpn).base_addr()));
        }
    });
    // Ablation: the same structure searched at 1 active way (Lite's
    // minimum) — shows the model cost is flat while the *energy* model is
    // what changes.
    tlb.set_active_ways(1);
    h.bench("tlb/set_assoc_lookup_1way", || {
        for vpn in 0..64u64 {
            black_box(tlb.lookup(Vpn::new(vpn).base_addr()));
        }
    });
}

fn bench_range_tlb_lookup(h: &mut Harness) {
    let mut tlb = RangeTlb::new("bench", 32);
    for i in 0..32u64 {
        tlb.insert(RangeTranslation::new(
            VirtRange::new(VirtAddr::new(i << 30), 1 << 29),
            PhysAddr::new((i + 100) << 30),
        ));
    }
    h.bench("range_tlb_lookup", || {
        for i in 0..32u64 {
            black_box(tlb.lookup(VirtAddr::new((i << 30) + 12345)));
        }
    });
}

fn bench_page_walk(h: &mut Harness) {
    let mut pt = PageTable::new();
    for vpn in 0..4096u64 {
        pt.map(PageTranslation::new(
            Vpn::new(vpn),
            Pfn::new(vpn),
            PageSize::Size4K,
        ))
        .unwrap();
    }
    // Warm walks: the PDE cache serves repeated locality.
    let mut warm_walker = PageWalker::new(MmuCaches::sandy_bridge());
    h.bench("walker/walk_warm", || {
        for vpn in 0..64u64 {
            black_box(warm_walker.walk(&pt, Vpn::new(vpn).base_addr()));
        }
    });
    // Ablation: walks with the MMU caches flushed every round (the
    // cost/benefit of the paging-structure caches).
    let mut cold_walker = PageWalker::new(MmuCaches::sandy_bridge());
    h.bench("walker/walk_cold", || {
        cold_walker.caches_mut().flush();
        for vpn in (0..4096u64).step_by(64) {
            black_box(cold_walker.walk(&pt, Vpn::new(vpn).base_addr()));
        }
    });
}

fn bench_simulator_throughput(h: &mut Harness) {
    for (name, config) in [
        ("simulator/step_thp", Config::thp()),
        ("simulator/step_tlb_lite", Config::tlb_lite()),
        ("simulator/step_rmm_lite", Config::rmm_lite()),
    ] {
        h.bench_batched(
            name,
            || Simulator::from_workload(config.clone(), Workload::Omnetpp, 3),
            |mut sim| black_box(sim.run(100_000 * 3)), // ~100k accesses
        );
    }
}

fn main() {
    let mut h = Harness::new();
    bench_set_assoc_lookup(&mut h);
    bench_range_tlb_lookup(&mut h);
    bench_page_walk(&mut h);
    bench_simulator_throughput(&mut h);
}
