//! Std-only benches — one target per table/figure of the paper.
//!
//! These measure the wall-clock cost of regenerating each experiment at a
//! reduced instruction budget (the printable versions live in `src/bin/`);
//! they double as end-to-end smoke tests that every experiment path stays
//! healthy under `cargo bench`.

use eeat_bench::timing::Harness;
use eeat_core::{fig3_walk_locality, fig4_fixed_sizes, lite_sensitivity, Config, Experiment};
use eeat_workloads::Workload;
use std::hint::black_box;

/// Small budget so each sample stays fast.
const INSTR: u64 = 400_000;

fn quick() -> Experiment {
    Experiment::new().with_instructions(INSTR).with_seed(7)
}

fn main() {
    let mut h = Harness::new();

    let fig2_configs = [Config::four_k(), Config::thp(), Config::rmm()];
    h.bench("fig2_energy_breakdown", || {
        black_box(quick().run_workload(Workload::Mcf, &fig2_configs))
    });

    h.bench("fig3_walk_locality", || {
        black_box(fig3_walk_locality(
            Workload::Mcf,
            INSTR,
            7,
            &[1.0, 0.5, 0.0],
        ))
    });

    h.bench("fig4_fixed_sizes", || {
        black_box(fig4_fixed_sizes(Workload::Astar, INSTR, INSTR / 10, 7))
    });

    let fig10_configs = Config::all_six();
    h.bench("fig10_main_result", || {
        black_box(quick().run_workload(Workload::CactusADM, &fig10_configs))
    });

    let fig11_configs = [Config::four_k(), Config::rmm_lite()];
    h.bench("fig11_mpki", || {
        let r = quick().run_workload(Workload::GemsFDTD, &fig11_configs);
        let s = &r.runs[1].result.stats;
        black_box((s.l1_mpki(), s.l2_mpki()))
    });

    let fig12_configs = [Config::thp(), Config::tlb_lite(), Config::rmm_lite()];
    h.bench("fig12_other_workloads", || {
        black_box(quick().run_workload(Workload::Povray, &fig12_configs))
    });

    let model = eeat_energy::EnergyModel::sandy_bridge();
    h.bench("table2_energy_model", || {
        let mut total = 0.0;
        for ways in [1usize, 2, 4] {
            total += black_box(model.l1_4k(ways).read_pj);
            total += black_box(model.l1_2m(ways).read_pj);
        }
        total += model.l1_range().read_pj + model.l2_page().read_pj;
        black_box(total)
    });

    let table5_configs = [Config::tlb_lite(), Config::rmm_lite()];
    h.bench("table5_way_residency", || {
        let r = quick().run_workload(Workload::Zeusmp, &table5_configs);
        let s = &r.runs[1].result.stats;
        black_box((s.l1_4k_way_shares(), s.l1_hit_shares()))
    });

    h.bench("sensitivity_lite_params", || {
        black_box(lite_sensitivity(
            Workload::Astar,
            INSTR,
            7,
            &[100_000, 200_000],
            &[1.0 / 32.0],
        ))
    });
}
