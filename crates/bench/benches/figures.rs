//! Criterion benches — one target per table/figure of the paper.
//!
//! These measure the wall-clock cost of regenerating each experiment at a
//! reduced instruction budget (the printable versions live in `src/bin/`);
//! they double as end-to-end smoke tests that every experiment path stays
//! healthy under `cargo bench`.

use criterion::{criterion_group, criterion_main, Criterion};
use eeat_core::{fig3_walk_locality, fig4_fixed_sizes, lite_sensitivity, Config, Experiment};
use eeat_workloads::Workload;
use std::hint::black_box;

/// Small budget so each Criterion sample stays fast.
const INSTR: u64 = 400_000;

fn quick() -> Experiment {
    Experiment::new().with_instructions(INSTR).with_seed(7)
}

fn bench_fig2_energy_breakdown(c: &mut Criterion) {
    let configs = [Config::four_k(), Config::thp(), Config::rmm()];
    c.bench_function("fig2_energy_breakdown", |b| {
        b.iter(|| black_box(quick().run_workload(Workload::Mcf, &configs)))
    });
}

fn bench_fig3_walk_locality(c: &mut Criterion) {
    c.bench_function("fig3_walk_locality", |b| {
        b.iter(|| {
            black_box(fig3_walk_locality(
                Workload::Mcf,
                INSTR,
                7,
                &[1.0, 0.5, 0.0],
            ))
        })
    });
}

fn bench_fig4_fixed_sizes(c: &mut Criterion) {
    c.bench_function("fig4_fixed_sizes", |b| {
        b.iter(|| black_box(fig4_fixed_sizes(Workload::Astar, INSTR, INSTR / 10, 7)))
    });
}

fn bench_fig10_main_result(c: &mut Criterion) {
    let configs = Config::all_six();
    c.bench_function("fig10_main_result", |b| {
        b.iter(|| black_box(quick().run_workload(Workload::CactusADM, &configs)))
    });
}

fn bench_fig11_mpki(c: &mut Criterion) {
    let configs = [Config::four_k(), Config::rmm_lite()];
    c.bench_function("fig11_mpki", |b| {
        b.iter(|| {
            let r = quick().run_workload(Workload::GemsFDTD, &configs);
            let s = &r.runs[1].result.stats;
            black_box((s.l1_mpki(), s.l2_mpki()))
        })
    });
}

fn bench_fig12_other_workloads(c: &mut Criterion) {
    let configs = [Config::thp(), Config::tlb_lite(), Config::rmm_lite()];
    c.bench_function("fig12_other_workloads", |b| {
        b.iter(|| black_box(quick().run_workload(Workload::Povray, &configs)))
    });
}

fn bench_table2_energy_model(c: &mut Criterion) {
    let model = eeat_energy::EnergyModel::sandy_bridge();
    c.bench_function("table2_energy_model", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for ways in [1usize, 2, 4] {
                total += black_box(model.l1_4k(ways).read_pj);
                total += black_box(model.l1_2m(ways).read_pj);
            }
            total += model.l1_range().read_pj + model.l2_page().read_pj;
            black_box(total)
        })
    });
}

fn bench_table5_way_residency(c: &mut Criterion) {
    let configs = [Config::tlb_lite(), Config::rmm_lite()];
    c.bench_function("table5_way_residency", |b| {
        b.iter(|| {
            let r = quick().run_workload(Workload::Zeusmp, &configs);
            let s = &r.runs[1].result.stats;
            black_box((s.l1_4k_way_shares(), s.l1_hit_shares()))
        })
    });
}

fn bench_sensitivity_lite_params(c: &mut Criterion) {
    c.bench_function("sensitivity_lite_params", |b| {
        b.iter(|| {
            black_box(lite_sensitivity(
                Workload::Astar,
                INSTR,
                7,
                &[100_000, 200_000],
                &[1.0 / 32.0],
            ))
        })
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets =
        bench_fig2_energy_breakdown,
        bench_fig3_walk_locality,
        bench_fig4_fixed_sizes,
        bench_fig10_main_result,
        bench_fig11_mpki,
        bench_fig12_other_workloads,
        bench_table2_energy_model,
        bench_table5_way_residency,
        bench_sensitivity_lite_params,
}
criterion_main!(figures);
