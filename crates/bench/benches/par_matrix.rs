//! Wall-clock speedup of the parallel experiment matrix.
//!
//! Times `Experiment::run_matrix` on a 4-workload × 4-config matrix with
//! one worker (the sequential path) and with all hardware threads, checks
//! the results are bit-identical, and reports the speedup. On a machine
//! with ≥ 4 cores the fan-out is expected to be ≥ 2× faster.

use std::time::Instant;

use eeat_bench::timing::fmt_duration;
use eeat_core::{Config, Experiment, WorkloadResults};
use eeat_workloads::Workload;

fn total_energy(results: &[WorkloadResults]) -> f64 {
    results
        .iter()
        .flat_map(|r| r.runs.iter())
        .map(|run| run.result.energy.total_pj())
        .sum()
}

fn main() {
    let workloads = [
        Workload::Mcf,
        Workload::Astar,
        Workload::CactusADM,
        Workload::Canneal,
    ];
    let configs = [
        Config::four_k(),
        Config::thp(),
        Config::tlb_lite(),
        Config::rmm_lite(),
    ];
    let instructions = std::env::var("EEAT_INSTRUCTIONS")
        .ok()
        .and_then(|v| v.replace('_', "").parse().ok())
        .unwrap_or(2_000_000);
    let exp = Experiment::new()
        .with_instructions(instructions)
        .with_seed(42);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Warm-up (page tables, allocator) outside the timed region.
    let _ = exp
        .with_instructions((instructions / 10).max(1))
        .run_matrix(&workloads, &configs);

    let t = Instant::now();
    let sequential = exp.with_threads(1).run_matrix(&workloads, &configs);
    let seq_time = t.elapsed();

    let t = Instant::now();
    let parallel = exp.run_matrix(&workloads, &configs);
    let par_time = t.elapsed();

    // The fan-out must not change a single bit of any result.
    for (s, p) in sequential.iter().zip(&parallel) {
        for (sr, pr) in s.runs.iter().zip(&p.runs) {
            assert_eq!(sr.config_name, pr.config_name);
            assert_eq!(
                sr.result.energy.total_pj().to_bits(),
                pr.result.energy.total_pj().to_bits(),
                "{} / {} diverged under parallel execution",
                s.workload,
                sr.config_name,
            );
            assert_eq!(sr.result.stats.l1_misses, pr.result.stats.l1_misses);
        }
    }
    assert!(total_energy(&parallel) > 0.0);

    let speedup = seq_time.as_secs_f64() / par_time.as_secs_f64();
    println!("run_matrix 4x4 @ {instructions} instructions on {cores} threads:");
    println!("  sequential {:>12}", fmt_duration(seq_time));
    println!("  parallel   {:>12}", fmt_duration(par_time));
    println!("  speedup    {speedup:>11.2}x");
    if cores >= 4 && speedup < 2.0 {
        eprintln!("warning: expected >= 2x speedup on {cores} threads, measured {speedup:.2}x");
        std::process::exit(1);
    }
}
