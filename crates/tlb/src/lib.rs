//! TLB hardware structures for the `eeat` simulator.
//!
//! This crate models the translation-caching structures of the paper's
//! Sandy Bridge baseline and of the proposed organizations:
//!
//! * [`SetAssocTlb`] — a set-associative page TLB with true per-set LRU and
//!   **way-disabling** (Albonesi's selective ways), the structure the Lite
//!   mechanism resizes. Lookups report the LRU-distance *rank* of each hit so
//!   Lite's `lru-distance-counters` can be maintained outside the structure.
//! * [`FullyAssocTlb`] — a fully associative page TLB (the 4-entry L1-1GB
//!   TLB of Table 1), resizable in powers of two as §4.4 of the paper
//!   describes for fully associative organizations.
//! * [`RangeTlb`] — a fully associative cache of RMM range translations,
//!   performing base/limit comparisons instead of tag equality (the L2-range
//!   TLB of RMM and the 4-entry L1-range TLB of RMM_Lite).
//! * [`CoalescedTlb`] — a CoLT-style set-associative TLB whose entries each
//!   cover up to [`COLT_GROUP`] contiguous 4 KiB mappings via a presence
//!   mask, trading a slightly wider entry for multiplied reach.
//! * [`TlbStats`] — lookup/hit/miss/fill accounting shared by all of them.
//!
//! All structures are deterministic and allocation-free on the lookup path.
//!
//! Every structure carries an [`ASID_BITS`]-bit ASID lane per entry plus a
//! *global* bit ([`ASID_GLOBAL`]), so a multi-tenant simulation can switch
//! address spaces with `set_current_asid` instead of flushing, and targeted
//! shootdowns (`invalidate_asid`, `flush_asid`) spare unrelated tenants.
//! The default ASID is 0, making single-context use bit-identical to an
//! untagged TLB.
//!
//! # Examples
//!
//! ```
//! use eeat_tlb::{PageTranslation, SetAssocTlb};
//! use eeat_types::{PageSize, Pfn, VirtAddr, Vpn};
//!
//! // The Sandy Bridge L1-4KB TLB: 64 entries, 4-way.
//! let mut tlb = SetAssocTlb::new("L1-4KB", 64, 4, PageSize::Size4K);
//! let va = VirtAddr::new(0x1000);
//! assert!(tlb.lookup(va).is_none());
//! tlb.insert(PageTranslation::new(Vpn::new(1), Pfn::new(7), PageSize::Size4K));
//! let hit = tlb.lookup(va).expect("just inserted");
//! assert_eq!(hit.translation.translate(va).raw(), 7 * 4096);
//! assert_eq!(hit.rank, 0); // most recently used
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coalesced;
mod entry;
mod fully_assoc;
mod range_tlb;
mod set_assoc;
mod stats;

pub use coalesced::{CoalescedTlb, COLT_GROUP};
pub use entry::{Hit, PageTranslation};
pub use fully_assoc::FullyAssocTlb;
pub use range_tlb::RangeTlb;
pub use set_assoc::{SetAssocTlb, ASID_BITS, ASID_GLOBAL, ASID_MASK, MAX_WAYS};
pub use stats::TlbStats;
