//! Coalesced set-associative TLB (CoLT): one entry covers up to a group of
//! contiguous 4 KiB mappings.

use core::fmt;

use eeat_types::{PageSize, Pfn, VirtAddr, VirtRange, Vpn};

use crate::entry::{Hit, PageTranslation};
use crate::set_assoc::{asid_overlaps, asid_visible, ASID_GLOBAL, ASID_MASK};
use crate::stats::TlbStats;

/// Pages per coalesced entry: CoLT's default coalescing degree. The
/// presence mask is a `u8`, so eight is also the structural maximum.
pub const COLT_GROUP: usize = 8;

/// Tag value of an empty slot (a real group tag always fits 45 − 3 bits).
const INVALID_TAG: u64 = u64::MAX;

/// A CoLT-style coalesced set-associative TLB.
///
/// Each entry anchors one *group* of [`COLT_GROUP`] virtually consecutive
/// 4 KiB pages (the group-aligned VPN is the tag) and stores a base PFN
/// plus an 8-bit presence mask: bit `i` set means page `group_vpn + i`
/// maps to `base_pfn + i`. A single entry therefore covers an entire
/// physically contiguous run within its group — up to 8× the reach of a
/// plain 4 KiB entry for the same entry count — while a lookup stays one
/// tag compare plus one mask test ("Coalesced TLB to Exploit Diverse
/// Contiguity of Memory Mapping", the CoLT-SA design).
///
/// Storage follows the workspace's structure-of-arrays idiom
/// ([`SetAssocTlb`](crate::SetAssocTlb)): a `u64` tag lane scanned on every
/// probe, a `u8` recency lane holding each set's true-LRU permutation, and
/// payload lanes (wrapping base-PFN delta, presence mask) read only after a
/// tag match.
///
/// # Examples
///
/// ```
/// use eeat_tlb::{CoalescedTlb, COLT_GROUP};
/// use eeat_types::{Pfn, VirtAddr, Vpn};
///
/// let mut tlb = CoalescedTlb::new("L1-CoLT", 64, 4);
/// // Three contiguous pages starting at the group base:
/// tlb.insert_group(Vpn::new(8), Pfn::new(100), 0b0000_0111);
/// assert!(tlb.lookup(VirtAddr::new(9 * 4096 + 5)).is_some());
/// assert!(tlb.lookup(VirtAddr::new(11 * 4096)).is_none()); // bit clear
/// ```
#[derive(Clone, Debug)]
pub struct CoalescedTlb {
    name: &'static str,
    /// Tag lane: the group-aligned VPN per slot, [`INVALID_TAG`] when empty.
    tags: Vec<u64>,
    /// `recency[i]` is the LRU rank of slot `i` within its set (0 = MRU).
    recency: Vec<u8>,
    /// Payload lane: wrapping `base_pfn - group_vpn` delta of the group's
    /// contiguous run (a hit reconstructs the page's PFN as
    /// `vpn.wrapping_add(delta)` — the run is PFN-contiguous, so one delta
    /// serves every covered page).
    pfn_deltas: Vec<u64>,
    /// Payload lane: presence mask, bit `i` covers page `group_vpn + i`.
    masks: Vec<u8>,
    /// ASID lane: the owning address-space tag of each slot, with the
    /// [`ASID_GLOBAL`] bit for entries visible to every ASID.
    asids: Vec<u16>,
    sets: usize,
    ways: usize,
    /// The ASID lookups and inserts currently run under.
    current_asid: u16,
    /// Total valid entries, kept incrementally so the empty-structure
    /// early-out and [`occupancy`](Self::occupancy) are O(1).
    valid: u32,
    stats: TlbStats,
}

impl CoalescedTlb {
    /// Creates an empty coalesced TLB with `entries` slots and `ways`
    /// associativity.
    ///
    /// # Panics
    ///
    /// Panics unless `ways` and `entries / ways` are non-zero powers of two
    /// and `entries` is a multiple of `ways`.
    pub fn new(name: &'static str, entries: usize, ways: usize) -> Self {
        assert!(
            ways.is_power_of_two() && ways > 0,
            "ways must be a power of two"
        );
        assert!(
            entries.is_multiple_of(ways),
            "entries must divide evenly into ways"
        );
        let sets = entries / ways;
        assert!(
            sets.is_power_of_two() && sets > 0,
            "sets must be a power of two"
        );
        Self {
            name,
            tags: vec![INVALID_TAG; entries],
            recency: (0..entries).map(|i| (i % ways) as u8).collect(),
            pfn_deltas: vec![0; entries],
            masks: vec![0; entries],
            asids: vec![0; entries],
            sets,
            ways,
            current_asid: 0,
            valid: 0,
            stats: TlbStats::new(),
        }
    }

    /// Switches the ASID that subsequent lookups and inserts run under.
    ///
    /// # Panics
    ///
    /// Panics if `asid` exceeds [`ASID_BITS`](crate::ASID_BITS) bits.
    pub fn set_current_asid(&mut self, asid: u16) {
        assert!(asid <= ASID_MASK, "ASID exceeds {} bits", crate::ASID_BITS);
        self.current_asid = asid;
    }

    /// The ASID lookups currently run under.
    pub fn current_asid(&self) -> u16 {
        self.current_asid
    }

    /// The structure's display name (e.g. `"L1-CoLT"`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Total number of entry slots.
    pub fn capacity(&self) -> usize {
        self.tags.len()
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Event counters.
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    /// Resets the event counters (the contents are untouched).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// The group-aligned VPN covering `vpn`.
    #[inline]
    fn group_base(vpn: Vpn) -> u64 {
        vpn.raw() & !(COLT_GROUP as u64 - 1)
    }

    #[inline]
    fn set_of(&self, group_vpn_raw: u64) -> usize {
        ((group_vpn_raw / COLT_GROUP as u64) as usize) & (self.sets - 1)
    }

    /// Looks up `va` (4 KiB references only — CoLT coalesces base pages).
    ///
    /// On a hit the entry is promoted to MRU; the reported rank is its
    /// pre-promotion LRU recency, as with the plain set-associative TLB.
    #[inline]
    pub fn lookup(&mut self, va: VirtAddr) -> Option<Hit> {
        // Skip mask: an empty structure is a guaranteed miss.
        if self.valid == 0 {
            self.stats.record_miss();
            return None;
        }
        let vpn = va.vpn();
        let group = Self::group_base(vpn);
        let offset = (vpn.raw() - group) as u32;
        let base = self.set_of(group) * self.ways;
        let cur = self.current_asid;
        if let Some(slot) = (base..base + self.ways)
            .find(|&slot| self.tags[slot] == group && asid_visible(self.asids[slot], cur))
        {
            if self.masks[slot] & (1 << offset) != 0 {
                let rank = self.recency[slot];
                self.touch(base, slot, rank);
                self.stats.record_hit();
                return Some(Hit {
                    translation: PageTranslation::new(
                        vpn,
                        Pfn::new(vpn.raw().wrapping_add(self.pfn_deltas[slot])),
                        PageSize::Size4K,
                    ),
                    rank,
                });
            }
        }
        self.stats.record_miss();
        None
    }

    /// Probes for a covering entry without affecting LRU state or counters.
    #[inline]
    pub fn probe(&self, va: VirtAddr) -> Option<PageTranslation> {
        if self.valid == 0 {
            return None;
        }
        let vpn = va.vpn();
        let group = Self::group_base(vpn);
        let offset = (vpn.raw() - group) as u32;
        let base = self.set_of(group) * self.ways;
        let cur = self.current_asid;
        (base..base + self.ways)
            .find(|&slot| {
                self.tags[slot] == group
                    && asid_visible(self.asids[slot], cur)
                    && self.masks[slot] & (1 << offset) != 0
            })
            .map(|slot| {
                PageTranslation::new(
                    vpn,
                    Pfn::new(vpn.raw().wrapping_add(self.pfn_deltas[slot])),
                    PageSize::Size4K,
                )
            })
    }

    /// Inserts a coalesced run under the current ASID: mask bit `i` maps
    /// page `group_vpn + i` to `base_pfn + i`. Evicts the set's LRU entry
    /// when the group is new to this ASID; a matching group with the same
    /// base PFN grows its mask in place, and a matching group with a
    /// *different* base PFN is replaced outright (the old run's translations
    /// are superseded), so no VPN is ever resident with two different
    /// translations visible to one ASID.
    ///
    /// # Panics
    ///
    /// Panics unless `group_vpn` is group-aligned and `mask` is non-zero.
    pub fn insert_group(&mut self, group_vpn: Vpn, base_pfn: Pfn, mask: u8) {
        self.insert_group_tagged(group_vpn, base_pfn, mask, self.current_asid);
    }

    /// Inserts a coalesced run as a *global* entry, visible to every ASID.
    ///
    /// # Panics
    ///
    /// Panics unless `group_vpn` is group-aligned and `mask` is non-zero.
    pub fn insert_group_global(&mut self, group_vpn: Vpn, base_pfn: Pfn, mask: u8) {
        self.insert_group_tagged(group_vpn, base_pfn, mask, self.current_asid | ASID_GLOBAL);
    }

    fn insert_group_tagged(&mut self, group_vpn: Vpn, base_pfn: Pfn, mask: u8, lane: u16) {
        assert!(
            group_vpn.raw() == Self::group_base(group_vpn),
            "group_vpn must be aligned to the coalescing group"
        );
        assert!(mask != 0, "a coalesced entry must cover at least one page");
        let group = group_vpn.raw();
        let base = self.set_of(group) * self.ways;

        // Merge into an overlapping duplicate (clearing any extra copy this
        // lane shadows), or pick an invalid slot, else evict LRU.
        let mut dup = None;
        let mut invalid = None;
        let mut shadowed = 0u64;
        for way in 0..self.ways {
            let slot = base + way;
            if self.tags[slot] == group && asid_overlaps(self.asids[slot], lane) {
                if dup.is_none() {
                    dup = Some(slot);
                } else {
                    self.clear_slot(base, slot);
                    shadowed += 1;
                }
            } else if invalid.is_none() && self.tags[slot] == INVALID_TAG {
                invalid = Some(slot);
            }
        }
        if shadowed > 0 {
            self.stats.record_invalidations(shadowed);
        }
        let slot = dup.or(invalid).unwrap_or_else(|| {
            let lru_rank = (self.ways - 1) as u8;
            (base..base + self.ways)
                .find(|&s| self.recency[s] == lru_rank)
                .expect("one slot always holds the LRU rank")
        });

        // Equal deltas under an equal group tag means an equal base PFN.
        let delta = base_pfn.raw().wrapping_sub(group);
        if self.tags[slot] == INVALID_TAG {
            self.valid += 1;
        }
        if self.tags[slot] == group && self.pfn_deltas[slot] == delta && self.asids[slot] == lane {
            self.masks[slot] |= mask;
        } else {
            self.tags[slot] = group;
            self.pfn_deltas[slot] = delta;
            self.masks[slot] = mask;
            self.asids[slot] = lane;
        }
        let rank = self.recency[slot];
        self.touch(base, slot, rank);
        self.stats.record_fill();
    }

    /// Empties `slot` and demotes it to its set's LRU end, keeping the
    /// ranks a permutation.
    fn clear_slot(&mut self, base: usize, slot: usize) {
        debug_assert!(
            self.tags[slot] != INVALID_TAG,
            "clear_slot expects a valid entry"
        );
        self.valid -= 1;
        self.tags[slot] = INVALID_TAG;
        self.masks[slot] = 0;
        let rank = self.recency[slot];
        for s in base..base + self.ways {
            if self.recency[s] > rank {
                self.recency[s] -= 1;
            }
        }
        self.recency[slot] = (self.ways - 1) as u8;
    }

    /// Promotes `slot` (with pre-promotion `rank`) to MRU within its set.
    #[inline]
    fn touch(&mut self, base: usize, slot: usize, rank: u8) {
        let set = &mut self.recency[base..base + self.ways];
        for r in set.iter_mut() {
            *r += u8::from(*r < rank);
        }
        self.recency[slot] = 0;
    }

    /// The per-page TLB shootdown (`invlpg`): clears the presence bit
    /// covering `va`; an entry whose last bit goes invalidates entirely.
    /// Returns the number of entries removed or shrunk (counted as
    /// invalidations in the stats).
    pub fn invalidate(&mut self, va: VirtAddr) -> u64 {
        let vpn = va.vpn();
        let group = Self::group_base(vpn);
        let bit = 1u8 << (vpn.raw() - group);
        self.invalidate_matching(|g, mask, _| if g == group { mask & !bit } else { mask })
    }

    /// Invalidates coverage overlapping `range` (multi-page shootdown),
    /// regardless of ASID. Returns the number of entries removed or shrunk.
    pub fn invalidate_range(&mut self, range: VirtRange) -> u64 {
        self.invalidate_matching(|group, mask, _| Self::mask_outside(group, mask, range))
    }

    /// Invalidates coverage of `va` held by non-global entries of `asid`
    /// (the targeted shootdown an IPI delivers). Returns the number of
    /// entries removed or shrunk.
    pub fn invalidate_asid(&mut self, asid: u16, va: VirtAddr) -> u64 {
        let vpn = va.vpn();
        let group = Self::group_base(vpn);
        let bit = 1u8 << (vpn.raw() - group);
        self.invalidate_matching(|g, mask, lane| {
            if g == group && lane & ASID_GLOBAL == 0 && lane & ASID_MASK == asid {
                mask & !bit
            } else {
                mask
            }
        })
    }

    /// Invalidates coverage overlapping `range` held by non-global entries
    /// of `asid`. Returns the number of entries removed or shrunk.
    pub fn invalidate_range_asid(&mut self, asid: u16, range: VirtRange) -> u64 {
        self.invalidate_matching(|group, mask, lane| {
            if lane & ASID_GLOBAL == 0 && lane & ASID_MASK == asid {
                Self::mask_outside(group, mask, range)
            } else {
                mask
            }
        })
    }

    /// Invalidates every non-global entry of `asid`; globals survive.
    /// Returns the number removed.
    pub fn flush_asid(&mut self, asid: u16) -> u64 {
        self.invalidate_matching(|_, mask, lane| {
            if lane & ASID_GLOBAL == 0 && lane & ASID_MASK == asid {
                0
            } else {
                mask
            }
        })
    }

    /// The bits of `mask` whose pages fall entirely outside `range`.
    fn mask_outside(group: u64, mask: u8, range: VirtRange) -> u8 {
        let mut keep = mask;
        for i in 0..COLT_GROUP as u64 {
            if mask & (1 << i) != 0
                && crate::set_assoc::page_overlaps(
                    Vpn::new(group + i).base_addr().raw(),
                    4096,
                    range,
                )
            {
                keep &= !(1 << i);
            }
        }
        keep
    }

    /// Rewrites each valid entry's mask through `keep(group, mask, lane)`;
    /// an entry whose mask shrinks counts as one invalidation, and an entry
    /// whose mask empties is removed (slot demoted to the LRU end).
    fn invalidate_matching(&mut self, mut keep: impl FnMut(u64, u8, u16) -> u8) -> u64 {
        let mut removed = 0u64;
        for set in 0..self.sets {
            let base = set * self.ways;
            for way in 0..self.ways {
                let slot = base + way;
                let tag = self.tags[slot];
                if tag == INVALID_TAG {
                    continue;
                }
                let mask = self.masks[slot];
                let kept = keep(tag, mask, self.asids[slot]);
                if kept == mask {
                    continue;
                }
                removed += 1;
                if kept != 0 {
                    self.masks[slot] = kept;
                    continue;
                }
                self.clear_slot(base, slot);
            }
        }
        self.stats.record_invalidations(removed);
        removed
    }

    /// Invalidates every entry.
    pub fn flush(&mut self) {
        self.stats.record_invalidations(u64::from(self.valid));
        for (i, tag) in self.tags.iter_mut().enumerate() {
            *tag = INVALID_TAG;
            self.recency[i] = (i % self.ways) as u8;
        }
        self.masks.fill(0);
        self.asids.fill(0);
        self.valid = 0;
    }

    /// Number of valid entries currently held (O(1): maintained
    /// incrementally).
    pub fn occupancy(&self) -> usize {
        self.valid as usize
    }

    /// Total 4 KiB pages covered by the resident entries (the reach the
    /// coalescing buys; equals [`occupancy`](Self::occupancy) when nothing
    /// coalesced).
    pub fn coverage_pages(&self) -> u64 {
        self.masks.iter().map(|&m| u64::from(m.count_ones())).sum()
    }

    /// Checks internal invariants; meant for tests and debugging.
    ///
    /// # Panics
    ///
    /// Panics if any set's recency lane is not a permutation of
    /// `0..ways`, a group tag appears twice in one set under overlapping
    /// ASID lanes (two resident entries could then translate the same VA
    /// differently for one lookup), a valid entry has an empty mask, an
    /// invalid slot a non-empty one, or a tag indexes into the wrong set.
    pub fn assert_invariants(&self) {
        assert_eq!(
            self.valid,
            self.tags.iter().filter(|&&t| t != INVALID_TAG).count() as u32,
            "valid count diverged from the tag lane"
        );
        for set in 0..self.sets {
            let base = set * self.ways;
            let mut seen = vec![false; self.ways];
            for w in 0..self.ways {
                let slot = base + w;
                let rank = self.recency[slot] as usize;
                assert!(rank < self.ways, "rank out of range in set {set}");
                assert!(!seen[rank], "duplicate rank in set {set}");
                seen[rank] = true;
                let tag = self.tags[slot];
                if tag == INVALID_TAG {
                    assert!(self.masks[slot] == 0, "empty slot holds coverage");
                    continue;
                }
                assert!(self.masks[slot] != 0, "valid entry covers no page");
                assert!(
                    tag == tag & !(COLT_GROUP as u64 - 1),
                    "tag not group-aligned in set {set}"
                );
                assert!(self.set_of(tag) == set, "tag indexed into wrong set");
                for other in base + w + 1..base + self.ways {
                    assert!(
                        self.tags[other] != tag
                            || !asid_overlaps(self.asids[slot], self.asids[other]),
                        "group {tag:#x} resident twice in set {set} for overlapping ASID lanes"
                    );
                }
            }
        }
    }
}

impl fmt::Display for CoalescedTlb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} entries x{} pages, {} resident covering {} pages, {}",
            self.name,
            self.capacity(),
            COLT_GROUP,
            self.occupancy(),
            self.coverage_pages(),
            self.stats
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CoalescedTlb {
        CoalescedTlb::new("colt", 8, 2) // 4 sets x 2 ways
    }

    #[test]
    fn lookup_covers_only_masked_pages() {
        let mut t = small();
        t.insert_group(Vpn::new(16), Pfn::new(300), 0b0000_1101);
        for (page, expect) in [(16u64, true), (17, false), (18, true), (19, true)] {
            let hit = t.lookup(VirtAddr::new(page * 4096 + 7));
            assert_eq!(hit.is_some(), expect, "page {page}");
            if let Some(h) = hit {
                assert_eq!(h.translation.pfn().raw(), 300 + (page - 16));
            }
        }
        assert_eq!(t.stats().hits(), 3);
        assert_eq!(t.stats().misses(), 1);
        t.assert_invariants();
    }

    #[test]
    fn one_entry_reaches_a_whole_group() {
        let mut t = small();
        t.insert_group(Vpn::new(0), Pfn::new(64), 0xff);
        assert_eq!(t.occupancy(), 1);
        assert_eq!(t.coverage_pages(), 8);
        for page in 0..8u64 {
            let h = t.lookup(VirtAddr::new(page * 4096)).expect("covered");
            assert_eq!(h.translation.pfn().raw(), 64 + page);
        }
    }

    #[test]
    fn same_group_same_base_merges_masks() {
        let mut t = small();
        t.insert_group(Vpn::new(8), Pfn::new(100), 0b0011);
        t.insert_group(Vpn::new(8), Pfn::new(100), 0b1100);
        assert_eq!(t.occupancy(), 1);
        assert_eq!(t.coverage_pages(), 4);
        t.assert_invariants();
    }

    #[test]
    fn same_group_new_base_replaces_entirely() {
        let mut t = small();
        t.insert_group(Vpn::new(8), Pfn::new(100), 0b0011);
        // The group was remapped elsewhere: the stale run must go.
        t.insert_group(Vpn::new(8), Pfn::new(500), 0b0100);
        assert_eq!(t.occupancy(), 1);
        assert!(t.lookup(VirtAddr::new(8 * 4096)).is_none());
        let h = t.lookup(VirtAddr::new(10 * 4096)).expect("new run");
        assert_eq!(h.translation.pfn().raw(), 502);
        t.assert_invariants();
    }

    #[test]
    fn lru_evicts_within_set() {
        let mut t = small(); // 4 sets, 2 ways: groups 0, 32, 64 share set 0
        t.insert_group(Vpn::new(0), Pfn::new(10), 1);
        t.insert_group(Vpn::new(32), Pfn::new(20), 1);
        t.lookup(VirtAddr::new(0)); // promote group 0
        t.insert_group(Vpn::new(64), Pfn::new(30), 1); // evicts group 32
        assert!(t.lookup(VirtAddr::new(0)).is_some());
        assert!(t.lookup(VirtAddr::new(32 * 4096)).is_none());
        assert!(t.lookup(VirtAddr::new(64 * 4096)).is_some());
        t.assert_invariants();
    }

    #[test]
    fn invalidate_clears_one_bit_then_entry() {
        let mut t = small();
        t.insert_group(Vpn::new(8), Pfn::new(100), 0b0011);
        assert_eq!(t.invalidate(VirtAddr::new(8 * 4096)), 1);
        assert_eq!(t.occupancy(), 1, "one page still covered");
        assert!(t.lookup(VirtAddr::new(8 * 4096)).is_none());
        assert!(t.lookup(VirtAddr::new(9 * 4096)).is_some());
        assert_eq!(t.invalidate(VirtAddr::new(9 * 4096)), 1);
        assert_eq!(t.occupancy(), 0, "last bit removes the entry");
        assert_eq!(t.invalidate(VirtAddr::new(9 * 4096)), 0);
        t.assert_invariants();
    }

    #[test]
    fn invalidate_range_handles_topmost_group() {
        // The COLT group containing the last page of the address space:
        // per-page overlap checks must not overflow past `u64::MAX`.
        let mut t = small();
        let top_group = ((1u64 << 52) - 1) & !(COLT_GROUP as u64 - 1);
        t.insert_group(Vpn::new(top_group), Pfn::new(64), 0xff);
        let shot = VirtRange::new(VirtAddr::new(u64::MAX - 4095), 4095);
        assert_eq!(t.invalidate_range(shot), 1);
        // Only the topmost page's bit was trimmed; the rest survive.
        assert!(t.lookup(Vpn::new(top_group).base_addr()).is_some());
        assert!(t
            .lookup(Vpn::new(top_group + COLT_GROUP as u64 - 1).base_addr())
            .is_none());
        t.assert_invariants();
    }

    #[test]
    fn invalidate_range_trims_overlap() {
        let mut t = small();
        t.insert_group(Vpn::new(0), Pfn::new(64), 0xff);
        // Shoot down pages 2..6.
        let n = t.invalidate_range(VirtRange::new(VirtAddr::new(2 * 4096), 4 * 4096));
        assert_eq!(n, 1);
        assert_eq!(t.coverage_pages(), 4);
        assert!(t.lookup(VirtAddr::new(4096)).is_some());
        assert!(t.lookup(VirtAddr::new(3 * 4096)).is_none());
        t.assert_invariants();
    }

    #[test]
    fn flush_empties_everything() {
        let mut t = small();
        t.insert_group(Vpn::new(0), Pfn::new(64), 0xff);
        t.insert_group(Vpn::new(8), Pfn::new(80), 0x01);
        t.flush();
        assert_eq!(t.occupancy(), 0);
        assert_eq!(t.coverage_pages(), 0);
        assert_eq!(t.stats().invalidations(), 2);
        t.assert_invariants();
    }

    #[test]
    fn probe_is_side_effect_free() {
        let mut t = small();
        t.insert_group(Vpn::new(8), Pfn::new(100), 0b0001);
        let before = *t.stats();
        assert!(t.probe(VirtAddr::new(8 * 4096)).is_some());
        assert!(t.probe(VirtAddr::new(9 * 4096)).is_none());
        assert_eq!(*t.stats(), before);
    }

    #[test]
    fn asid_isolates_groups() {
        let mut t = small();
        t.set_current_asid(1);
        t.insert_group(Vpn::new(8), Pfn::new(100), 0b0001);
        t.set_current_asid(2);
        assert!(t.lookup(VirtAddr::new(8 * 4096)).is_none(), "other ASID");
        // Same group under a second ASID coexists with the first copy.
        t.insert_group(Vpn::new(8), Pfn::new(500), 0b0001);
        assert_eq!(t.occupancy(), 2);
        assert_eq!(
            t.lookup(VirtAddr::new(8 * 4096))
                .unwrap()
                .translation
                .pfn()
                .raw(),
            500
        );
        t.set_current_asid(1);
        assert_eq!(
            t.lookup(VirtAddr::new(8 * 4096))
                .unwrap()
                .translation
                .pfn()
                .raw(),
            100
        );
        t.assert_invariants();
    }

    #[test]
    fn global_group_shadows_and_survives() {
        let mut t = small();
        t.set_current_asid(1);
        t.insert_group(Vpn::new(8), Pfn::new(100), 0b0001);
        // A global insert of the same group supersedes the per-ASID copy.
        t.insert_group_global(Vpn::new(8), Pfn::new(100), 0b0011);
        assert_eq!(t.occupancy(), 1);
        t.set_current_asid(7);
        assert!(
            t.lookup(VirtAddr::new(9 * 4096)).is_some(),
            "global visible"
        );
        assert_eq!(t.flush_asid(1), 0, "global untouched by ASID flush");
        assert!(t.probe(VirtAddr::new(8 * 4096)).is_some());
        t.assert_invariants();
    }

    #[test]
    fn invalidate_asid_trims_only_that_asid() {
        let mut t = small();
        t.set_current_asid(1);
        t.insert_group(Vpn::new(8), Pfn::new(100), 0b0011);
        t.set_current_asid(2);
        t.insert_group(Vpn::new(8), Pfn::new(500), 0b0011);
        assert_eq!(t.invalidate_asid(1, VirtAddr::new(8 * 4096)), 1);
        assert!(
            t.lookup(VirtAddr::new(8 * 4096)).is_some(),
            "ASID 2 copy stays"
        );
        t.set_current_asid(1);
        assert!(t.lookup(VirtAddr::new(8 * 4096)).is_none());
        assert!(
            t.lookup(VirtAddr::new(9 * 4096)).is_some(),
            "other bit stays"
        );
        let shot = VirtRange::new(VirtAddr::new(8 * 4096), 2 * 4096);
        assert_eq!(t.invalidate_range_asid(2, shot), 1);
        assert!(
            t.lookup(VirtAddr::new(9 * 4096)).is_some(),
            "ASID 1 bit stays"
        );
        t.assert_invariants();
    }

    #[test]
    #[should_panic(expected = "group_vpn must be aligned")]
    fn unaligned_group_rejected() {
        small().insert_group(Vpn::new(3), Pfn::new(0), 1);
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn empty_mask_rejected() {
        small().insert_group(Vpn::new(8), Pfn::new(0), 0);
    }

    #[test]
    fn display_summarizes() {
        let mut t = small();
        t.insert_group(Vpn::new(0), Pfn::new(64), 0b0111);
        let s = t.to_string();
        assert!(s.contains("colt"));
        assert!(s.contains("covering 3 pages"));
    }
}
