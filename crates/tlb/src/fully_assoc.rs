//! Fully associative page TLB.

use core::fmt;

use eeat_types::{PageSize, VirtAddr, VirtRange};

use crate::entry::{Hit, PageTranslation};
use crate::set_assoc::SetAssocTlb;
use crate::stats::TlbStats;

/// A fully associative page TLB — a single set whose every slot is a way.
///
/// Used for the 4-entry L1-1GB TLB of the Sandy Bridge baseline (Table 1).
/// Lite applies to fully associative structures too: §4.4 of the paper
/// clusters LRU distances "as if there were ways" and resizes the structure
/// in powers of two, which is exactly what [`set_active_entries`]
/// implements.
///
/// [`set_active_entries`]: FullyAssocTlb::set_active_entries
///
/// # Examples
///
/// ```
/// use eeat_tlb::{FullyAssocTlb, PageTranslation};
/// use eeat_types::{PageSize, Pfn, VirtAddr, Vpn};
///
/// let mut tlb = FullyAssocTlb::new("L1-1GB", 4, PageSize::Size1G);
/// let pages = PageSize::Size1G.base_pages();
/// tlb.insert(PageTranslation::new(Vpn::new(0), Pfn::new(pages), PageSize::Size1G));
/// assert!(tlb.lookup(VirtAddr::new(123)).is_some());
/// ```
#[derive(Clone, Debug)]
pub struct FullyAssocTlb {
    inner: SetAssocTlb,
}

impl FullyAssocTlb {
    /// Creates an empty fully associative TLB with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a power of two no larger than
    /// [`MAX_WAYS`](crate::MAX_WAYS) (every slot is a way of the single
    /// set, so the way bound is the entry bound).
    pub fn new(name: &'static str, entries: usize, default_size: PageSize) -> Self {
        Self {
            inner: SetAssocTlb::new(name, entries, entries, default_size),
        }
    }

    /// The structure's display name.
    pub fn name(&self) -> &'static str {
        self.inner.name()
    }

    /// Total number of slots.
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    /// Currently active slots (≤ capacity, power of two).
    pub fn active_entries(&self) -> usize {
        self.inner.active_ways()
    }

    /// The page size assumed by [`lookup`](Self::lookup).
    pub fn default_size(&self) -> PageSize {
        self.inner.default_size()
    }

    /// Event counters.
    pub fn stats(&self) -> &TlbStats {
        self.inner.stats()
    }

    /// Resets the event counters.
    pub fn reset_stats(&mut self) {
        self.inner.reset_stats();
    }

    /// Looks up `va` assuming the structure's default page size; hits report
    /// their LRU rank and are promoted to MRU.
    pub fn lookup(&mut self, va: VirtAddr) -> Option<Hit> {
        self.inner.lookup(va)
    }

    /// Looks up `va` as a reference to a page of `size`.
    pub fn lookup_for_size(&mut self, va: VirtAddr, size: PageSize) -> Option<Hit> {
        self.inner.lookup_for_size(va, size)
    }

    /// Looks up `va` matching entries of *any* page size — the natural
    /// lookup of a fully associative TLB, where the page size need not be
    /// known to form an index (paper §2.2 / §4.4).
    pub fn lookup_any_size(&mut self, va: VirtAddr) -> Option<Hit> {
        self.inner.lookup_any_size(va)
    }

    /// Probes without disturbing LRU state or counters.
    pub fn probe(&self, va: VirtAddr, size: PageSize) -> Option<PageTranslation> {
        self.inner.probe(va, size)
    }

    /// Inserts `translation`, evicting the LRU entry when full.
    pub fn insert(&mut self, translation: PageTranslation) {
        self.inner.insert(translation);
    }

    /// Inserts `translation` as a *global* mapping, visible to every ASID.
    pub fn insert_global(&mut self, translation: PageTranslation) {
        self.inner.insert_global(translation);
    }

    /// Switches the ASID that subsequent lookups and inserts run under.
    ///
    /// # Panics
    ///
    /// Panics if `asid` exceeds [`ASID_BITS`](crate::ASID_BITS) bits.
    pub fn set_current_asid(&mut self, asid: u16) {
        self.inner.set_current_asid(asid);
    }

    /// The ASID lookups currently run under.
    pub fn current_asid(&self) -> u16 {
        self.inner.current_asid()
    }

    /// Resizes to `entries` active slots (Lite's power-of-two downsizing of
    /// fully associative structures). Disabled slots are invalidated.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a power of two in `1..=capacity()`.
    pub fn set_active_entries(&mut self, entries: usize) {
        self.inner.set_active_ways(entries);
    }

    /// Invalidates every entry covering `va`, regardless of page size.
    /// Returns the number of entries removed.
    pub fn invalidate(&mut self, va: VirtAddr) -> u64 {
        self.inner.invalidate(va)
    }

    /// Invalidates every entry whose page overlaps `range`. Returns the
    /// number of entries removed.
    pub fn invalidate_range(&mut self, range: VirtRange) -> u64 {
        self.inner.invalidate_range(range)
    }

    /// Invalidates every non-global entry of `asid` covering `va` (the
    /// targeted shootdown an IPI delivers). Returns the number removed.
    pub fn invalidate_asid(&mut self, asid: u16, va: VirtAddr) -> u64 {
        self.inner.invalidate_asid(asid, va)
    }

    /// Invalidates every non-global entry of `asid` whose page overlaps
    /// `range`. Returns the number removed.
    pub fn invalidate_range_asid(&mut self, asid: u16, range: VirtRange) -> u64 {
        self.inner.invalidate_range_asid(asid, range)
    }

    /// Invalidates every non-global entry of `asid`; globals survive.
    /// Returns the number removed.
    pub fn flush_asid(&mut self, asid: u16) -> u64 {
        self.inner.flush_asid(asid)
    }

    /// Invalidates every entry.
    pub fn flush(&mut self) {
        self.inner.flush();
    }

    /// Number of valid entries currently held.
    pub fn occupancy(&self) -> usize {
        self.inner.occupancy()
    }

    /// Checks internal invariants; meant for tests.
    ///
    /// # Panics
    ///
    /// Panics when the LRU permutation or the inactive-slot emptiness
    /// invariant is violated.
    pub fn assert_invariants(&self) {
        self.inner.assert_invariants();
    }
}

impl fmt::Display for FullyAssocTlb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} entries fully associative ({} active), {}",
            self.name(),
            self.capacity(),
            self.active_entries(),
            self.stats()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eeat_types::{Pfn, Vpn};

    fn t1g(index: u64) -> PageTranslation {
        let pages = PageSize::Size1G.base_pages();
        PageTranslation::new(
            Vpn::new(index * pages),
            Pfn::new((index + 8) * pages),
            PageSize::Size1G,
        )
    }

    fn va1g(index: u64) -> VirtAddr {
        VirtAddr::new(index * PageSize::Size1G.bytes() + 0x1234)
    }

    #[test]
    fn full_associativity_no_conflicts() {
        let mut tlb = FullyAssocTlb::new("L1-1GB", 4, PageSize::Size1G);
        for i in 0..4 {
            tlb.insert(t1g(i));
        }
        for i in 0..4 {
            assert!(tlb.lookup(va1g(i)).is_some(), "entry {i} present");
        }
        assert_eq!(tlb.occupancy(), 4);
        tlb.assert_invariants();
    }

    #[test]
    fn lru_eviction_order() {
        let mut tlb = FullyAssocTlb::new("t", 4, PageSize::Size1G);
        for i in 0..4 {
            tlb.insert(t1g(i));
        }
        tlb.lookup(va1g(0)); // protect the oldest
        tlb.insert(t1g(4)); // evicts entry 1
        assert!(tlb.probe(va1g(0), PageSize::Size1G).is_some());
        assert!(tlb.probe(va1g(1), PageSize::Size1G).is_none());
        assert!(tlb.probe(va1g(4), PageSize::Size1G).is_some());
    }

    #[test]
    fn rank_is_lru_distance() {
        let mut tlb = FullyAssocTlb::new("t", 4, PageSize::Size1G);
        for i in 0..4 {
            tlb.insert(t1g(i));
        }
        assert_eq!(tlb.lookup(va1g(0)).unwrap().rank, 3);
        assert_eq!(tlb.lookup(va1g(3)).unwrap().rank, 1);
    }

    #[test]
    fn downsizing_to_single_entry() {
        let mut tlb = FullyAssocTlb::new("t", 4, PageSize::Size1G);
        for i in 0..4 {
            tlb.insert(t1g(i));
        }
        tlb.set_active_entries(1);
        assert_eq!(tlb.active_entries(), 1);
        assert_eq!(tlb.occupancy(), 1);
        // Only the MRU entry (the last insert) survives.
        assert!(tlb.probe(va1g(3), PageSize::Size1G).is_some());
        tlb.insert(t1g(7));
        assert!(tlb.probe(va1g(3), PageSize::Size1G).is_none());
        tlb.assert_invariants();
    }

    #[test]
    fn mixed_sizes_via_any_size_lookup() {
        use eeat_types::{Pfn, Vpn};
        let mut tlb = FullyAssocTlb::new("L1", 8, PageSize::Size4K);
        tlb.insert(PageTranslation::new(
            Vpn::new(7),
            Pfn::new(7),
            PageSize::Size4K,
        ));
        tlb.insert(PageTranslation::new(
            Vpn::new(512),
            Pfn::new(1024),
            PageSize::Size2M,
        ));
        // Size-agnostic: both sizes hit without knowing the page size.
        assert!(tlb.lookup_any_size(VirtAddr::new(7 * 4096 + 5)).is_some());
        let hit = tlb
            .lookup_any_size(VirtAddr::new(512 * 4096 + (1 << 20)))
            .expect("2M entry covers");
        assert_eq!(hit.translation.size(), PageSize::Size2M);
        assert!(tlb.lookup_any_size(VirtAddr::new(9 * 4096)).is_none());
    }

    #[test]
    fn invalidate_targets_one_entry() {
        let mut tlb = FullyAssocTlb::new("t", 4, PageSize::Size1G);
        for i in 0..4 {
            tlb.insert(t1g(i));
        }
        assert_eq!(tlb.invalidate(va1g(2)), 1);
        assert!(tlb.probe(va1g(2), PageSize::Size1G).is_none());
        for i in [0, 1, 3] {
            assert!(tlb.probe(va1g(i), PageSize::Size1G).is_some());
        }
        tlb.assert_invariants();
    }

    #[test]
    fn asid_delegation_isolates_and_spares_globals() {
        let mut tlb = FullyAssocTlb::new("t", 4, PageSize::Size1G);
        tlb.set_current_asid(1);
        tlb.insert(t1g(0));
        tlb.insert_global(t1g(1));
        tlb.set_current_asid(2);
        assert!(tlb.lookup(va1g(0)).is_none(), "ASID 1 entry hidden");
        assert!(tlb.lookup(va1g(1)).is_some(), "global entry visible");
        assert_eq!(tlb.flush_asid(1), 1);
        assert!(tlb.probe(va1g(1), PageSize::Size1G).is_some());
        tlb.set_current_asid(1);
        assert!(tlb.lookup(va1g(0)).is_none());
        tlb.assert_invariants();
    }

    #[test]
    fn display_mentions_capacity() {
        let tlb = FullyAssocTlb::new("L1-range", 4, PageSize::Size4K);
        assert!(tlb.to_string().contains("4 entries fully associative"));
    }
}
