//! TLB entries and hit descriptors.

use core::fmt;

use eeat_types::{PageSize, Pfn, PhysAddr, VirtAddr, Vpn};

/// A cached page translation: one page-table entry as held by a TLB.
///
/// The virtual page number and physical frame number are stored aligned to
/// the page size; a 2 MiB entry therefore translates all 512 base pages it
/// covers.
///
/// # Examples
///
/// ```
/// use eeat_tlb::PageTranslation;
/// use eeat_types::{PageSize, Pfn, VirtAddr, Vpn};
///
/// let t = PageTranslation::new(Vpn::new(512), Pfn::new(1024), PageSize::Size2M);
/// assert!(t.covers(VirtAddr::new(512 * 4096 + 123)));
/// assert_eq!(t.translate(VirtAddr::new(512 * 4096)).raw(), 1024 * 4096);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PageTranslation {
    vpn: Vpn,
    pfn: Pfn,
    size: PageSize,
}

impl PageTranslation {
    /// Creates a translation for the page of `size` starting at `vpn`.
    ///
    /// # Panics
    ///
    /// Panics if `vpn` or `pfn` is not aligned to `size` — a misaligned huge
    /// mapping cannot exist in an x86-64 page table.
    pub fn new(vpn: Vpn, pfn: Pfn, size: PageSize) -> Self {
        assert!(vpn.is_aligned(size), "vpn {vpn} not aligned to {size}");
        assert!(pfn.is_aligned(size), "pfn {pfn} not aligned to {size}");
        Self { vpn, pfn, size }
    }

    /// The first virtual page number of the mapped page.
    #[inline]
    pub const fn vpn(self) -> Vpn {
        self.vpn
    }

    /// The first physical frame number of the mapped page.
    #[inline]
    pub const fn pfn(self) -> Pfn {
        self.pfn
    }

    /// The page size of the mapping.
    #[inline]
    pub const fn size(self) -> PageSize {
        self.size
    }

    /// `true` when `va` lies inside the mapped page.
    #[inline]
    pub fn covers(self, va: VirtAddr) -> bool {
        va.vpn().align_down(self.size) == self.vpn
    }

    /// The tag a TLB compares for this translation: the size-aligned VPN.
    #[inline]
    pub fn tag_of(va: VirtAddr, size: PageSize) -> Vpn {
        va.vpn().align_down(size)
    }

    /// Translates `va` through this entry.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `va` is outside the mapped page; a TLB only
    /// calls this after a tag match.
    #[inline]
    pub fn translate(self, va: VirtAddr) -> PhysAddr {
        debug_assert!(self.covers(va), "translate outside mapped page");
        self.pfn.base_addr() + va.page_offset(self.size)
    }
}

impl fmt::Display for PageTranslation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}->{}", self.size, self.vpn, self.pfn)
    }
}

/// The result of a TLB hit.
///
/// `rank` is the recency rank of the hit entry among the *active* entries of
/// its set (0 = most recently used, `active_ways - 1` = least recently used).
/// The Lite monitor converts this rank into its `lru-distance-counters`
/// (Figure 6 of the paper): a hit with rank `r` under `w` active ways would
/// have missed had fewer than `r + 1` ways been enabled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hit {
    /// The matching translation.
    pub translation: PageTranslation,
    /// LRU recency rank of the entry at lookup time (0 = MRU).
    pub rank: u8,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_and_translate_4k() {
        let t = PageTranslation::new(Vpn::new(5), Pfn::new(9), PageSize::Size4K);
        let inside = VirtAddr::new(5 * 4096 + 100);
        assert!(t.covers(inside));
        assert!(!t.covers(VirtAddr::new(6 * 4096)));
        assert_eq!(t.translate(inside).raw(), 9 * 4096 + 100);
    }

    #[test]
    fn covers_and_translate_2m() {
        let t = PageTranslation::new(Vpn::new(1024), Pfn::new(2048), PageSize::Size2M);
        for off in [0u64, 4096, 512 * 4096 - 1] {
            let va = VirtAddr::new(1024 * 4096 + off);
            assert!(t.covers(va));
            assert_eq!(t.translate(va).raw(), 2048 * 4096 + off);
        }
        assert!(!t.covers(VirtAddr::new((1024 + 512) * 4096)));
    }

    #[test]
    fn tag_of_masks_by_size() {
        let va = VirtAddr::new(0x4030_2010);
        assert_eq!(PageTranslation::tag_of(va, PageSize::Size4K), va.vpn());
        assert_eq!(
            PageTranslation::tag_of(va, PageSize::Size2M),
            va.vpn().align_down(PageSize::Size2M)
        );
    }

    #[test]
    #[should_panic(expected = "not aligned")]
    fn misaligned_vpn_rejected() {
        let _ = PageTranslation::new(Vpn::new(3), Pfn::new(512), PageSize::Size2M);
    }

    #[test]
    #[should_panic(expected = "not aligned")]
    fn misaligned_pfn_rejected() {
        let _ = PageTranslation::new(Vpn::new(512), Pfn::new(3), PageSize::Size2M);
    }

    #[test]
    fn display() {
        let t = PageTranslation::new(Vpn::new(1), Pfn::new(2), PageSize::Size4K);
        assert_eq!(t.to_string(), "4KB 0x1->0x2");
    }
}
