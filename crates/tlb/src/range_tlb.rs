//! Fully associative TLB for RMM range translations.

use core::fmt;

use eeat_types::{RangeTranslation, VirtAddr, VirtRange};

use crate::stats::TlbStats;

/// A fully associative cache of [`RangeTranslation`] entries.
///
/// Unlike a page TLB, a hit requires a *range check* — two comparisons
/// against the base and limit of each entry instead of one tag equality —
/// which is why the energy model charges a range TLB as a page TLB with
/// twice the tag bits (paper §5). Each entry maps an arbitrarily large
/// range, giving small range TLBs (4 entries at L1, 32 at L2) very high hit
/// ratios under eager paging.
///
/// Entries are replaced with true LRU.
///
/// # Examples
///
/// ```
/// use eeat_tlb::RangeTlb;
/// use eeat_types::{PhysAddr, RangeTranslation, VirtAddr, VirtRange};
///
/// let mut tlb = RangeTlb::new("L1-range", 4);
/// let rt = RangeTranslation::new(
///     VirtRange::new(VirtAddr::new(0x10_0000), 0x100_0000),
///     PhysAddr::new(0x8000_0000),
/// );
/// tlb.insert(rt);
/// let pa = tlb.lookup(VirtAddr::new(0x55_1234)).expect("inside the range");
/// assert_eq!(pa.translate(VirtAddr::new(0x55_1234)).unwrap().raw(),
///            0x8000_0000 + 0x45_1234);
/// ```
#[derive(Clone, Debug)]
pub struct RangeTlb {
    name: &'static str,
    entries: Vec<Option<RangeTranslation>>,
    /// `recency[i]` is the LRU rank of slot `i` (0 = MRU).
    recency: Vec<u8>,
    stats: TlbStats,
}

impl RangeTlb {
    /// Creates an empty range TLB with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or above 128.
    pub fn new(name: &'static str, entries: usize) -> Self {
        assert!(entries > 0, "a range TLB needs at least one entry");
        assert!(
            entries <= 128,
            "rank counters are u8; entries above 128 unsupported"
        );
        Self {
            name,
            entries: vec![None; entries],
            recency: (0..entries).map(|i| i as u8).collect(),
            stats: TlbStats::new(),
        }
    }

    /// The structure's display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Total number of slots.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Event counters.
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    /// Resets the event counters.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Looks up the range containing `va`; a hit is promoted to MRU.
    pub fn lookup(&mut self, va: VirtAddr) -> Option<RangeTranslation> {
        for slot in 0..self.entries.len() {
            if let Some(rt) = self.entries[slot] {
                if rt.virt().contains(va) {
                    let rank = self.recency[slot];
                    self.touch(slot, rank);
                    self.stats.record_hit();
                    return Some(rt);
                }
            }
        }
        self.stats.record_miss();
        None
    }

    /// Probes for the range containing `va` without disturbing LRU state or
    /// counters.
    pub fn probe(&self, va: VirtAddr) -> Option<RangeTranslation> {
        self.entries
            .iter()
            .flatten()
            .copied()
            .find(|rt| rt.virt().contains(va))
    }

    /// Inserts `translation`, evicting the LRU entry when full.
    ///
    /// An entry with the same virtual range is overwritten in place, so the
    /// structure never holds duplicates. (Overlapping-but-unequal ranges are
    /// the range table's responsibility to prevent.)
    pub fn insert(&mut self, translation: RangeTranslation) {
        let mut victim = None;
        for slot in 0..self.entries.len() {
            match self.entries[slot] {
                Some(rt) if rt.virt() == translation.virt() => {
                    victim = Some(slot);
                    break;
                }
                None if victim.is_none() => victim = Some(slot),
                _ => {}
            }
        }
        let slot = victim.unwrap_or_else(|| {
            let lru_rank = (self.entries.len() - 1) as u8;
            self.recency
                .iter()
                .position(|&r| r == lru_rank)
                .expect("one slot always holds the LRU rank")
        });
        self.entries[slot] = Some(translation);
        let rank = self.recency[slot];
        self.touch(slot, rank);
        self.stats.record_fill();
    }

    #[inline]
    fn touch(&mut self, slot: usize, rank: u8) {
        for r in self.recency.iter_mut() {
            if *r < rank {
                *r += 1;
            }
        }
        self.recency[slot] = 0;
    }

    /// Invalidates every entry whose range contains `va` (the shootdown of a
    /// single page unmaps any range covering it). Returns the number of
    /// entries removed.
    pub fn invalidate(&mut self, va: VirtAddr) -> u64 {
        self.invalidate_matching(|rt| rt.virt().contains(va))
    }

    /// Invalidates every entry whose range overlaps `range`. Returns the
    /// number of entries removed.
    pub fn invalidate_range(&mut self, range: VirtRange) -> u64 {
        self.invalidate_matching(|rt| rt.virt().overlaps(range))
    }

    /// Removes every entry matching `pred`, demoting each vacated slot to
    /// the LRU end so the ranks stay a permutation.
    fn invalidate_matching(&mut self, mut pred: impl FnMut(&RangeTranslation) -> bool) -> u64 {
        let mut removed = 0u64;
        let n = self.entries.len();
        for slot in 0..n {
            let Some(rt) = self.entries[slot] else {
                continue;
            };
            if !pred(&rt) {
                continue;
            }
            self.entries[slot] = None;
            let rank = self.recency[slot];
            for r in self.recency.iter_mut() {
                if *r > rank {
                    *r -= 1;
                }
            }
            self.recency[slot] = (n - 1) as u8;
            removed += 1;
        }
        self.stats.record_invalidations(removed);
        removed
    }

    /// Invalidates every entry.
    pub fn flush(&mut self) {
        let valid = self.entries.iter().filter(|e| e.is_some()).count() as u64;
        self.stats.record_invalidations(valid);
        for (i, e) in self.entries.iter_mut().enumerate() {
            *e = None;
            self.recency[i] = i as u8;
        }
    }

    /// Number of valid entries currently held.
    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }
}

impl fmt::Display for RangeTlb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} range entries, {}",
            self.name,
            self.capacity(),
            self.stats
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eeat_types::{PhysAddr, VirtRange};

    fn rt(start_mb: u64, len_mb: u64, phys_mb: u64) -> RangeTranslation {
        RangeTranslation::new(
            VirtRange::new(VirtAddr::new(start_mb << 20), len_mb << 20),
            PhysAddr::new(phys_mb << 20),
        )
    }

    #[test]
    fn containment_hit() {
        let mut tlb = RangeTlb::new("t", 4);
        tlb.insert(rt(16, 64, 512));
        assert!(tlb.lookup(VirtAddr::new(40 << 20)).is_some());
        assert!(tlb.lookup(VirtAddr::new(80 << 20)).is_none());
        assert_eq!(tlb.stats().hits(), 1);
        assert_eq!(tlb.stats().misses(), 1);
    }

    #[test]
    fn one_entry_maps_huge_span() {
        let mut tlb = RangeTlb::new("t", 1);
        tlb.insert(rt(0, 4096, 8192)); // a 4 GiB range in one entry
        for mb in [0u64, 1000, 4095] {
            assert!(tlb.lookup(VirtAddr::new(mb << 20)).is_some());
        }
        assert_eq!(tlb.occupancy(), 1);
    }

    #[test]
    fn lru_eviction() {
        let mut tlb = RangeTlb::new("t", 2);
        tlb.insert(rt(0, 1, 100));
        tlb.insert(rt(10, 1, 200));
        tlb.lookup(VirtAddr::new(0)); // protect the first range
        tlb.insert(rt(20, 1, 300)); // evicts the 10 MB range
        assert!(tlb.probe(VirtAddr::new(0)).is_some());
        assert!(tlb.probe(VirtAddr::new(10 << 20)).is_none());
        assert!(tlb.probe(VirtAddr::new(20 << 20)).is_some());
    }

    #[test]
    fn duplicate_insert_overwrites() {
        let mut tlb = RangeTlb::new("t", 4);
        tlb.insert(rt(0, 1, 100));
        tlb.insert(rt(0, 1, 300));
        assert_eq!(tlb.occupancy(), 1);
        let hit = tlb.probe(VirtAddr::new(0)).unwrap();
        assert_eq!(hit.phys_base().raw(), 300 << 20);
    }

    #[test]
    fn flush_and_counters() {
        let mut tlb = RangeTlb::new("t", 4);
        tlb.insert(rt(0, 1, 100));
        tlb.insert(rt(10, 1, 200));
        tlb.flush();
        assert_eq!(tlb.occupancy(), 0);
        assert_eq!(tlb.stats().invalidations(), 2);
        assert!(tlb.lookup(VirtAddr::new(0)).is_none());
    }

    #[test]
    fn invalidate_hits_only_covering_ranges() {
        let mut tlb = RangeTlb::new("t", 4);
        tlb.insert(rt(0, 16, 100));
        tlb.insert(rt(32, 16, 200));
        assert_eq!(tlb.invalidate(VirtAddr::new(40 << 20)), 1);
        assert!(tlb.probe(VirtAddr::new(0)).is_some());
        assert!(tlb.probe(VirtAddr::new(40 << 20)).is_none());
        assert_eq!(tlb.stats().invalidations(), 1);
        // The vacated slot is reused before any eviction.
        tlb.insert(rt(64, 1, 300));
        tlb.insert(rt(80, 1, 400));
        tlb.insert(rt(96, 1, 500));
        assert!(tlb.probe(VirtAddr::new(0)).is_some());
    }

    #[test]
    fn invalidate_range_takes_overlaps() {
        let mut tlb = RangeTlb::new("t", 4);
        tlb.insert(rt(0, 16, 100));
        tlb.insert(rt(32, 16, 200));
        tlb.insert(rt(64, 16, 300));
        // [40 MB, 72 MB) overlaps the second and third ranges.
        let shot = VirtRange::new(VirtAddr::new(40 << 20), 32 << 20);
        assert_eq!(tlb.invalidate_range(shot), 2);
        assert!(tlb.probe(VirtAddr::new(0)).is_some());
        assert_eq!(tlb.occupancy(), 1);
    }

    #[test]
    fn probe_does_not_disturb() {
        let mut tlb = RangeTlb::new("t", 2);
        tlb.insert(rt(0, 1, 100));
        let before = *tlb.stats();
        tlb.probe(VirtAddr::new(0));
        assert_eq!(*tlb.stats(), before);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = RangeTlb::new("t", 0);
    }
}
