//! Fully associative TLB for RMM range translations.

use core::fmt;

use eeat_types::{PhysAddr, RangeTranslation, VirtAddr, VirtRange};

use crate::set_assoc::{asid_overlaps, asid_visible, ASID_GLOBAL, ASID_MASK, MAX_WAYS};
use crate::stats::TlbStats;

/// A fully associative cache of [`RangeTranslation`] entries.
///
/// Unlike a page TLB, a hit requires a *range check* — two comparisons
/// against the base and limit of each entry instead of one tag equality —
/// which is why the energy model charges a range TLB as a page TLB with
/// twice the tag bits (paper §5). Each entry maps an arbitrarily large
/// range, giving small range TLBs (4 entries at L1, 32 at L2) very high hit
/// ratios under eager paging.
///
/// Entries are replaced with true LRU.
///
/// # Scan layout
///
/// Besides the authoritative slot array, the structure maintains a scan
/// lane of `(base, end, slot)` triples sorted by range base, rebuilt on the
/// cold mutation paths (insert / invalidate / flush). Lookups walk the
/// sorted lane and stop at the first base above the probed address; since
/// the range table keeps ranges disjoint, at most one entry can contain any
/// address, so the sorted walk returns exactly what the slot-order walk
/// would.
///
/// # Examples
///
/// ```
/// use eeat_tlb::RangeTlb;
/// use eeat_types::{PhysAddr, RangeTranslation, VirtAddr, VirtRange};
///
/// let mut tlb = RangeTlb::new("L1-range", 4);
/// let rt = RangeTranslation::new(
///     VirtRange::new(VirtAddr::new(0x10_0000), 0x100_0000),
///     PhysAddr::new(0x8000_0000),
/// );
/// tlb.insert(rt);
/// let pa = tlb.lookup(VirtAddr::new(0x55_1234)).expect("inside the range");
/// assert_eq!(pa.translate(VirtAddr::new(0x55_1234)).unwrap().raw(),
///            0x8000_0000 + 0x45_1234);
/// ```
#[derive(Clone, Debug)]
pub struct RangeTlb {
    name: &'static str,
    entries: Vec<Option<RangeTranslation>>,
    /// `recency[i]` is the LRU rank of slot `i` (0 = MRU).
    recency: Vec<u8>,
    /// ASID lane: the owning address-space tag of each slot, with the
    /// [`ASID_GLOBAL`] bit for entries visible to every ASID.
    asids: Vec<u16>,
    /// Valid entries as `(base, end, delta, slot)` sorted by `(base, slot)`
    /// — the lane the lookup scans, where `delta` is the wrapping
    /// `phys_base - virt_base` offset. A hit reconstructs the full
    /// translation from the scan tuple alone (one wrapping add), never
    /// touching the slot array. Rebuilt by
    /// [`rebuild_scan`](Self::rebuild_scan) after any content mutation.
    /// Bases are unique per ASID (the range table keeps ranges disjoint),
    /// but distinct ASIDs may cache the same virtual range, so the lookup
    /// filters by ASID visibility as it walks.
    scan: Vec<(u64, u64, u64, u8)>,
    /// The ASID lookups and inserts currently run under.
    current_asid: u16,
    stats: TlbStats,
}

impl RangeTlb {
    /// Creates an empty range TLB with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or above
    /// [`MAX_WAYS`](crate::MAX_WAYS).
    pub fn new(name: &'static str, entries: usize) -> Self {
        assert!(entries > 0, "a range TLB needs at least one entry");
        assert!(
            entries <= MAX_WAYS,
            "entries above MAX_WAYS ({MAX_WAYS}) unsupported: rank counters are u8"
        );
        Self {
            name,
            entries: vec![None; entries],
            recency: (0..entries).map(|i| i as u8).collect(),
            asids: vec![0; entries],
            scan: Vec::with_capacity(entries),
            current_asid: 0,
            stats: TlbStats::new(),
        }
    }

    /// Switches the ASID that subsequent lookups and inserts run under.
    ///
    /// # Panics
    ///
    /// Panics if `asid` exceeds [`ASID_BITS`](crate::ASID_BITS) bits.
    pub fn set_current_asid(&mut self, asid: u16) {
        assert!(asid <= ASID_MASK, "ASID exceeds {} bits", crate::ASID_BITS);
        self.current_asid = asid;
    }

    /// The ASID lookups currently run under.
    pub fn current_asid(&self) -> u16 {
        self.current_asid
    }

    /// The structure's display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Total number of slots.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Event counters.
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    /// Resets the event counters.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Looks up the range containing `va`; a hit is promoted to MRU.
    #[inline]
    pub fn lookup(&mut self, va: VirtAddr) -> Option<RangeTranslation> {
        let raw = va.raw();
        let cur = self.current_asid;
        for i in 0..self.scan.len() {
            let (base, end, delta, slot) = self.scan[i];
            if base > raw {
                break; // sorted by base: no later entry can contain va
            }
            if raw < end && asid_visible(self.asids[slot as usize], cur) {
                let slot = slot as usize;
                let rank = self.recency[slot];
                self.touch(slot, rank);
                self.stats.record_hit();
                // Reconstructed from the scan tuple: exact, since the
                // wrapping delta round-trips the physical base.
                return Some(RangeTranslation::new(
                    VirtRange::new(VirtAddr::new(base), end - base),
                    PhysAddr::new(base.wrapping_add(delta)),
                ));
            }
        }
        self.stats.record_miss();
        None
    }

    /// Probes for the range containing `va` without disturbing LRU state or
    /// counters.
    #[inline]
    pub fn probe(&self, va: VirtAddr) -> Option<RangeTranslation> {
        let raw = va.raw();
        let cur = self.current_asid;
        self.scan
            .iter()
            .take_while(|&&(base, _, _, _)| base <= raw)
            .find(|&&(_, end, _, slot)| raw < end && asid_visible(self.asids[slot as usize], cur))
            .map(|&(base, end, delta, _)| {
                RangeTranslation::new(
                    VirtRange::new(VirtAddr::new(base), end - base),
                    PhysAddr::new(base.wrapping_add(delta)),
                )
            })
    }

    /// Rebuilds the sorted scan lane from the slot array. Called on the cold
    /// mutation paths; the `(base, slot)` key is a total order (bases are
    /// unique per ASID but may repeat across ASIDs), so the unstable sort is
    /// deterministic.
    fn rebuild_scan(&mut self) {
        self.scan.clear();
        for (slot, entry) in self.entries.iter().enumerate() {
            if let Some(rt) = entry {
                let base = rt.virt().start().raw();
                self.scan.push((
                    base,
                    rt.virt().end().raw(),
                    rt.phys_base().raw().wrapping_sub(base),
                    slot as u8,
                ));
            }
        }
        self.scan
            .sort_unstable_by_key(|&(base, _, _, slot)| (base, slot));
    }

    /// Inserts `translation` under the current ASID, evicting the LRU entry
    /// when full.
    ///
    /// An entry with the same virtual range whose ASID lane overlaps the
    /// current one is overwritten in place, so no lookup ever sees two
    /// entries for one range. (Overlapping-but-unequal ranges are the range
    /// table's responsibility to prevent.)
    pub fn insert(&mut self, translation: RangeTranslation) {
        self.insert_tagged(translation, self.current_asid);
    }

    /// Inserts `translation` as a *global* range, visible to every ASID.
    pub fn insert_global(&mut self, translation: RangeTranslation) {
        self.insert_tagged(translation, self.current_asid | ASID_GLOBAL);
    }

    fn insert_tagged(&mut self, translation: RangeTranslation, lane: u16) {
        let mut dup = None;
        let mut invalid = None;
        let mut shadowed = 0u64;
        for slot in 0..self.entries.len() {
            match self.entries[slot] {
                Some(rt)
                    if rt.virt() == translation.virt() && asid_overlaps(self.asids[slot], lane) =>
                {
                    if dup.is_none() {
                        dup = Some(slot);
                    } else {
                        self.clear_slot(slot);
                        shadowed += 1;
                    }
                }
                None if invalid.is_none() => invalid = Some(slot),
                _ => {}
            }
        }
        if shadowed > 0 {
            self.stats.record_invalidations(shadowed);
        }
        let slot = dup.or(invalid).unwrap_or_else(|| {
            let lru_rank = (self.entries.len() - 1) as u8;
            self.recency
                .iter()
                .position(|&r| r == lru_rank)
                .expect("one slot always holds the LRU rank")
        });
        self.entries[slot] = Some(translation);
        self.asids[slot] = lane;
        let rank = self.recency[slot];
        self.touch(slot, rank);
        self.rebuild_scan();
        self.stats.record_fill();
    }

    /// Empties `slot` and demotes it to the LRU end, keeping the ranks a
    /// permutation. Does not rebuild the scan lane.
    fn clear_slot(&mut self, slot: usize) {
        self.entries[slot] = None;
        let rank = self.recency[slot];
        for r in self.recency.iter_mut() {
            if *r > rank {
                *r -= 1;
            }
        }
        self.recency[slot] = (self.entries.len() - 1) as u8;
    }

    #[inline]
    fn touch(&mut self, slot: usize, rank: u8) {
        for r in self.recency.iter_mut() {
            if *r < rank {
                *r += 1;
            }
        }
        self.recency[slot] = 0;
    }

    /// Invalidates every entry whose range contains `va` (the shootdown of a
    /// single page unmaps any range covering it), regardless of ASID.
    /// Returns the number of entries removed.
    pub fn invalidate(&mut self, va: VirtAddr) -> u64 {
        self.invalidate_matching(|rt, _| rt.virt().contains(va))
    }

    /// Invalidates every entry whose range overlaps `range`, regardless of
    /// ASID. Returns the number of entries removed.
    pub fn invalidate_range(&mut self, range: VirtRange) -> u64 {
        self.invalidate_matching(|rt, _| rt.virt().overlaps(range))
    }

    /// Invalidates every non-global entry of `asid` whose range contains
    /// `va` (the targeted shootdown an IPI delivers). Returns the number
    /// removed.
    pub fn invalidate_asid(&mut self, asid: u16, va: VirtAddr) -> u64 {
        self.invalidate_matching(|rt, lane| {
            lane & ASID_GLOBAL == 0 && lane & ASID_MASK == asid && rt.virt().contains(va)
        })
    }

    /// Invalidates every non-global entry of `asid` whose range overlaps
    /// `range`. Returns the number removed.
    pub fn invalidate_range_asid(&mut self, asid: u16, range: VirtRange) -> u64 {
        self.invalidate_matching(|rt, lane| {
            lane & ASID_GLOBAL == 0 && lane & ASID_MASK == asid && rt.virt().overlaps(range)
        })
    }

    /// Invalidates every non-global entry of `asid`; globals survive.
    /// Returns the number removed.
    pub fn flush_asid(&mut self, asid: u16) -> u64 {
        self.invalidate_matching(|_, lane| lane & ASID_GLOBAL == 0 && lane & ASID_MASK == asid)
    }

    /// Removes every entry matching `pred` (which sees the translation and
    /// its ASID lane), demoting each vacated slot to the LRU end so the
    /// ranks stay a permutation.
    fn invalidate_matching(&mut self, mut pred: impl FnMut(&RangeTranslation, u16) -> bool) -> u64 {
        let mut removed = 0u64;
        for slot in 0..self.entries.len() {
            let Some(rt) = self.entries[slot] else {
                continue;
            };
            if !pred(&rt, self.asids[slot]) {
                continue;
            }
            self.clear_slot(slot);
            removed += 1;
        }
        if removed > 0 {
            self.rebuild_scan();
        }
        self.stats.record_invalidations(removed);
        removed
    }

    /// Invalidates every entry.
    pub fn flush(&mut self) {
        let valid = self.entries.iter().filter(|e| e.is_some()).count() as u64;
        self.stats.record_invalidations(valid);
        for (i, e) in self.entries.iter_mut().enumerate() {
            *e = None;
            self.recency[i] = i as u8;
            self.asids[i] = 0;
        }
        self.scan.clear();
    }

    /// Number of valid entries currently held.
    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Checks internal invariants; meant for tests and debugging.
    ///
    /// # Panics
    ///
    /// Panics if the recency ranks are not a permutation of `0..capacity`,
    /// or the sorted scan lane disagrees with the slot array.
    pub fn assert_invariants(&self) {
        let n = self.entries.len();
        let mut seen = vec![false; n];
        for &rank in &self.recency {
            let rank = rank as usize;
            assert!(rank < n, "rank out of range");
            assert!(!seen[rank], "duplicate rank");
            seen[rank] = true;
        }
        assert_eq!(
            self.scan.len(),
            self.occupancy(),
            "scan lane covers every valid slot"
        );
        for (i, &(base, end, delta, slot)) in self.scan.iter().enumerate() {
            let rt = self.entries[slot as usize].expect("scan lane points at a valid slot");
            assert_eq!(base, rt.virt().start().raw(), "stale scan base");
            assert_eq!(end, rt.virt().end().raw(), "stale scan end");
            assert_eq!(
                base.wrapping_add(delta),
                rt.phys_base().raw(),
                "stale scan delta"
            );
            if i > 0 {
                let (pb, _, _, ps) = self.scan[i - 1];
                assert!(
                    (pb, ps) < (base, slot),
                    "scan lane not sorted by (base, slot)"
                );
            }
        }
        for a in 0..n {
            let Some(ra) = self.entries[a] else { continue };
            for b in a + 1..n {
                let Some(rb) = self.entries[b] else { continue };
                assert!(
                    !(ra.virt() == rb.virt() && asid_overlaps(self.asids[a], self.asids[b])),
                    "range {:?} resident twice for overlapping ASID lanes",
                    ra.virt()
                );
            }
        }
    }
}

impl fmt::Display for RangeTlb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} range entries, {}",
            self.name,
            self.capacity(),
            self.stats
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eeat_types::{PhysAddr, VirtRange};

    fn rt(start_mb: u64, len_mb: u64, phys_mb: u64) -> RangeTranslation {
        RangeTranslation::new(
            VirtRange::new(VirtAddr::new(start_mb << 20), len_mb << 20),
            PhysAddr::new(phys_mb << 20),
        )
    }

    #[test]
    fn containment_hit() {
        let mut tlb = RangeTlb::new("t", 4);
        tlb.insert(rt(16, 64, 512));
        assert!(tlb.lookup(VirtAddr::new(40 << 20)).is_some());
        assert!(tlb.lookup(VirtAddr::new(80 << 20)).is_none());
        assert_eq!(tlb.stats().hits(), 1);
        assert_eq!(tlb.stats().misses(), 1);
    }

    #[test]
    fn one_entry_maps_huge_span() {
        let mut tlb = RangeTlb::new("t", 1);
        tlb.insert(rt(0, 4096, 8192)); // a 4 GiB range in one entry
        for mb in [0u64, 1000, 4095] {
            assert!(tlb.lookup(VirtAddr::new(mb << 20)).is_some());
        }
        assert_eq!(tlb.occupancy(), 1);
    }

    #[test]
    fn lru_eviction() {
        let mut tlb = RangeTlb::new("t", 2);
        tlb.insert(rt(0, 1, 100));
        tlb.insert(rt(10, 1, 200));
        tlb.lookup(VirtAddr::new(0)); // protect the first range
        tlb.insert(rt(20, 1, 300)); // evicts the 10 MB range
        assert!(tlb.probe(VirtAddr::new(0)).is_some());
        assert!(tlb.probe(VirtAddr::new(10 << 20)).is_none());
        assert!(tlb.probe(VirtAddr::new(20 << 20)).is_some());
    }

    #[test]
    fn duplicate_insert_overwrites() {
        let mut tlb = RangeTlb::new("t", 4);
        tlb.insert(rt(0, 1, 100));
        tlb.insert(rt(0, 1, 300));
        assert_eq!(tlb.occupancy(), 1);
        let hit = tlb.probe(VirtAddr::new(0)).unwrap();
        assert_eq!(hit.phys_base().raw(), 300 << 20);
    }

    #[test]
    fn flush_and_counters() {
        let mut tlb = RangeTlb::new("t", 4);
        tlb.insert(rt(0, 1, 100));
        tlb.insert(rt(10, 1, 200));
        tlb.flush();
        assert_eq!(tlb.occupancy(), 0);
        assert_eq!(tlb.stats().invalidations(), 2);
        assert!(tlb.lookup(VirtAddr::new(0)).is_none());
    }

    #[test]
    fn invalidate_hits_only_covering_ranges() {
        let mut tlb = RangeTlb::new("t", 4);
        tlb.insert(rt(0, 16, 100));
        tlb.insert(rt(32, 16, 200));
        assert_eq!(tlb.invalidate(VirtAddr::new(40 << 20)), 1);
        assert!(tlb.probe(VirtAddr::new(0)).is_some());
        assert!(tlb.probe(VirtAddr::new(40 << 20)).is_none());
        assert_eq!(tlb.stats().invalidations(), 1);
        // The vacated slot is reused before any eviction.
        tlb.insert(rt(64, 1, 300));
        tlb.insert(rt(80, 1, 400));
        tlb.insert(rt(96, 1, 500));
        assert!(tlb.probe(VirtAddr::new(0)).is_some());
    }

    #[test]
    fn invalidate_range_takes_overlaps() {
        let mut tlb = RangeTlb::new("t", 4);
        tlb.insert(rt(0, 16, 100));
        tlb.insert(rt(32, 16, 200));
        tlb.insert(rt(64, 16, 300));
        // [40 MB, 72 MB) overlaps the second and third ranges.
        let shot = VirtRange::new(VirtAddr::new(40 << 20), 32 << 20);
        assert_eq!(tlb.invalidate_range(shot), 2);
        assert!(tlb.probe(VirtAddr::new(0)).is_some());
        assert_eq!(tlb.occupancy(), 1);
    }

    #[test]
    fn probe_does_not_disturb() {
        let mut tlb = RangeTlb::new("t", 2);
        tlb.insert(rt(0, 1, 100));
        let before = *tlb.stats();
        tlb.probe(VirtAddr::new(0));
        assert_eq!(*tlb.stats(), before);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = RangeTlb::new("t", 0);
    }

    #[test]
    fn max_ways_boundary_accepted() {
        use crate::MAX_WAYS;
        let mut tlb = RangeTlb::new("t", MAX_WAYS);
        for i in 0..MAX_WAYS as u64 {
            tlb.insert(rt(16 * i, 1, 1000 + i));
        }
        assert_eq!(tlb.occupancy(), MAX_WAYS);
        // Oldest entry is LRU; one more insert evicts it.
        tlb.insert(rt(16 * MAX_WAYS as u64, 1, 9999));
        assert!(tlb.probe(VirtAddr::new(0)).is_none());
        assert_eq!(tlb.occupancy(), MAX_WAYS);
        tlb.assert_invariants();
    }

    #[test]
    #[should_panic(expected = "MAX_WAYS")]
    fn above_max_ways_rejected() {
        let _ = RangeTlb::new("t", crate::MAX_WAYS + 1);
    }

    #[test]
    fn asid_isolates_ranges() {
        let mut tlb = RangeTlb::new("t", 4);
        tlb.set_current_asid(1);
        tlb.insert(rt(0, 16, 100));
        tlb.set_current_asid(2);
        assert!(tlb.lookup(VirtAddr::new(8 << 20)).is_none(), "other ASID");
        // The same virtual range may be cached under both ASIDs at once.
        tlb.insert(rt(0, 16, 900));
        assert_eq!(tlb.occupancy(), 2);
        assert_eq!(
            tlb.probe(VirtAddr::new(0)).unwrap().phys_base().raw(),
            900 << 20
        );
        tlb.set_current_asid(1);
        assert_eq!(
            tlb.probe(VirtAddr::new(0)).unwrap().phys_base().raw(),
            100 << 20
        );
        tlb.assert_invariants();
    }

    #[test]
    fn global_range_visible_to_every_asid() {
        let mut tlb = RangeTlb::new("t", 4);
        tlb.set_current_asid(3);
        tlb.insert_global(rt(64, 16, 700));
        tlb.set_current_asid(5);
        assert!(tlb.lookup(VirtAddr::new(70 << 20)).is_some());
        tlb.assert_invariants();
    }

    #[test]
    fn flush_asid_spares_globals_and_other_asids() {
        let mut tlb = RangeTlb::new("t", 4);
        tlb.set_current_asid(1);
        tlb.insert(rt(0, 16, 100));
        tlb.insert_global(rt(64, 16, 700));
        tlb.set_current_asid(2);
        tlb.insert(rt(32, 16, 200));
        assert_eq!(tlb.flush_asid(1), 1);
        assert!(tlb.probe(VirtAddr::new(70 << 20)).is_some(), "global stays");
        assert!(tlb.probe(VirtAddr::new(40 << 20)).is_some(), "ASID 2 stays");
        tlb.set_current_asid(1);
        assert!(tlb.probe(VirtAddr::new(0)).is_none());
        tlb.assert_invariants();
    }

    #[test]
    fn invalidate_asid_is_targeted() {
        let mut tlb = RangeTlb::new("t", 4);
        tlb.set_current_asid(1);
        tlb.insert(rt(0, 16, 100));
        tlb.set_current_asid(2);
        tlb.insert(rt(0, 16, 900));
        assert_eq!(tlb.invalidate_asid(1, VirtAddr::new(8 << 20)), 1);
        assert!(
            tlb.probe(VirtAddr::new(8 << 20)).is_some(),
            "ASID 2 copy stays"
        );
        tlb.set_current_asid(1);
        assert!(tlb.probe(VirtAddr::new(8 << 20)).is_none());
        tlb.assert_invariants();
    }

    #[test]
    fn scan_lane_tracks_mutations() {
        let mut tlb = RangeTlb::new("t", 4);
        tlb.insert(rt(32, 16, 200));
        tlb.insert(rt(0, 16, 100));
        tlb.assert_invariants();
        // Lookup in the middle range works through the sorted lane.
        assert!(tlb.lookup(VirtAddr::new(40 << 20)).is_some());
        tlb.invalidate(VirtAddr::new(40 << 20));
        tlb.assert_invariants();
        assert!(tlb.lookup(VirtAddr::new(40 << 20)).is_none());
        assert!(tlb.lookup(VirtAddr::new(8 << 20)).is_some());
        tlb.flush();
        tlb.assert_invariants();
        assert!(tlb.lookup(VirtAddr::new(8 << 20)).is_none());
    }
}
