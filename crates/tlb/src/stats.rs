//! Lookup/hit/miss accounting shared by all TLB structures.

use core::fmt;
use core::ops::{Add, AddAssign};

/// Event counters of one TLB structure.
///
/// `lookups = hits + misses` always holds; `fills` counts insertions (the
/// write operations of the paper's energy model, `M * E_write` in Table 3),
/// and `invalidations` counts entries dropped by way-disabling or flushes.
///
/// # Examples
///
/// ```
/// use eeat_tlb::TlbStats;
///
/// let mut s = TlbStats::default();
/// s.record_hit();
/// s.record_miss();
/// assert_eq!(s.lookups(), 2);
/// assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TlbStats {
    hits: u64,
    misses: u64,
    fills: u64,
    invalidations: u64,
}

impl TlbStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a lookup that hit.
    #[inline]
    pub fn record_hit(&mut self) {
        self.hits += 1;
    }

    /// Records a lookup that missed.
    #[inline]
    pub fn record_miss(&mut self) {
        self.misses += 1;
    }

    /// Records an insertion (a write in the energy model).
    #[inline]
    pub fn record_fill(&mut self) {
        self.fills += 1;
    }

    /// Records `n` entries invalidated by resizing or flushing.
    #[inline]
    pub fn record_invalidations(&mut self, n: u64) {
        self.invalidations += n;
    }

    /// Total lookups performed.
    #[inline]
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Lookups that hit.
    #[inline]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that missed.
    #[inline]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Insertions performed.
    #[inline]
    pub fn fills(&self) -> u64 {
        self.fills
    }

    /// Entries invalidated by way-disabling or flushes.
    #[inline]
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Hit ratio in `[0, 1]`; 0 when no lookups have happened.
    pub fn hit_ratio(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

impl Add for TlbStats {
    type Output = Self;

    fn add(self, rhs: Self) -> Self {
        Self {
            hits: self.hits + rhs.hits,
            misses: self.misses + rhs.misses,
            fills: self.fills + rhs.fills,
            invalidations: self.invalidations + rhs.invalidations,
        }
    }
}

impl AddAssign for TlbStats {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl fmt::Display for TlbStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} lookups, {} hits ({:.2}%), {} fills",
            self.lookups(),
            self.hits,
            self.hit_ratio() * 100.0,
            self.fills
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = TlbStats::new();
        for _ in 0..3 {
            s.record_hit();
        }
        s.record_miss();
        s.record_fill();
        s.record_invalidations(5);
        assert_eq!(s.hits(), 3);
        assert_eq!(s.misses(), 1);
        assert_eq!(s.lookups(), 4);
        assert_eq!(s.fills(), 1);
        assert_eq!(s.invalidations(), 5);
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_hit_ratio_is_zero() {
        assert_eq!(TlbStats::new().hit_ratio(), 0.0);
    }

    #[test]
    fn add_merges_componentwise() {
        let mut a = TlbStats::new();
        a.record_hit();
        a.record_fill();
        let mut b = TlbStats::new();
        b.record_miss();
        b.record_invalidations(2);
        let c = a + b;
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.fills(), 1);
        assert_eq!(c.invalidations(), 2);
        let mut d = a;
        d += b;
        assert_eq!(d, c);
    }

    #[test]
    fn reset_zeroes() {
        let mut s = TlbStats::new();
        s.record_hit();
        s.reset();
        assert_eq!(s, TlbStats::default());
    }

    #[test]
    fn display_is_nonempty() {
        let mut s = TlbStats::new();
        s.record_hit();
        assert!(s.to_string().contains("1 lookups"));
    }
}
