//! Set-associative page TLB with true LRU and way-disabling.

use core::fmt;

use eeat_types::{PageSize, Pfn, VirtAddr, VirtRange, Vpn};

use crate::entry::{Hit, PageTranslation};
use crate::stats::TlbStats;

/// Maximum physical associativity of a [`SetAssocTlb`] — and, since a
/// fully associative structure is a single set whose every slot is a way,
/// also the maximum entry count of [`FullyAssocTlb`](crate::FullyAssocTlb)
/// and [`RangeTlb`](crate::RangeTlb).
///
/// LRU recency ranks are stored as one `u8` per slot, holding the
/// permutation `0..active_ways` of each set. 128 is the largest power of
/// two that leaves the upper half of the `u8` range as headroom for debug
/// sentinels and keeps the rank-compaction arithmetic trivially
/// overflow-free; it is far above any hardware TLB associativity (the
/// paper's largest structure is the 512-entry 4-way L2). The differential
/// oracle models in `eeat-oracle` mirror this bound so the fuzzer cannot
/// construct a reference structure the production code rejects.
pub const MAX_WAYS: usize = 128;

/// Tag value of an empty slot. Valid tags encode the page-size code in
/// their two low bits (`0..=2`), so `u64::MAX` (low bits `0b11`) can never
/// collide with a real tag.
const INVALID_TAG: u64 = u64::MAX;

/// Number of ASID bits carried per entry (x86 PCIDs are 12 bits; 15 leaves
/// headroom while keeping the lane one `u16` with the global flag).
pub const ASID_BITS: u32 = 15;

/// Mask of the ASID value within a stored lane word.
pub const ASID_MASK: u16 = (1 << ASID_BITS) - 1;

/// Lane flag marking an entry visible to every ASID (the PTE global bit:
/// kernel text/data that survives context switches).
pub const ASID_GLOBAL: u16 = 1 << ASID_BITS;

/// `true` when an entry tagged `lane` is visible to a lookup under
/// `current` — its ASID matches or the entry is global.
#[inline]
pub(crate) fn asid_visible(lane: u16, current: u16) -> bool {
    lane & ASID_GLOBAL != 0 || lane & ASID_MASK == current
}

/// `true` when two stored lanes can shadow each other for some lookup:
/// either is global, or both carry the same ASID. Insert uses this to keep
/// at most one entry visible per (tag, ASID) pair.
#[inline]
pub(crate) fn asid_overlaps(a: u16, b: u16) -> bool {
    a & ASID_GLOBAL != 0 || b & ASID_GLOBAL != 0 || a & ASID_MASK == b & ASID_MASK
}

/// `true` when the page `[base, base + bytes)` overlaps `range`, computed
/// with inclusive last-address arithmetic so the topmost page of the
/// address space (where `base + bytes` wraps to zero) is handled instead of
/// overflowing.
#[inline]
pub(crate) fn page_overlaps(base: u64, bytes: u64, range: VirtRange) -> bool {
    debug_assert!(bytes > 0, "pages are never empty");
    let page_last = base.saturating_add(bytes - 1);
    !range.is_empty() && base < range.end().raw() && page_last >= range.start().raw()
}

/// The 2-bit size-class code fused into tags — also the index into the
/// per-size occupancy skip counts.
#[inline]
fn size_code(size: PageSize) -> usize {
    match size {
        PageSize::Size4K => 0,
        PageSize::Size2M => 1,
        PageSize::Size1G => 2,
    }
}

/// Packs a size-aligned VPN and its page size into one comparable word:
/// `(vpn << 2) | size_code`. x86-64 VPNs fit 45 bits (57-bit VA space), so
/// the shift cannot overflow.
#[inline]
fn encode_tag(vpn: Vpn, size: PageSize) -> u64 {
    debug_assert!(vpn.raw() < (1 << 62), "vpn too large to tag-encode");
    (vpn.raw() << 2) | size_code(size) as u64
}

/// The tag a lookup of `va` at `size` compares against.
#[inline]
fn lookup_tag(va: VirtAddr, size: PageSize) -> u64 {
    encode_tag(va.vpn().align_down(size), size)
}

/// Recovers the page size from a valid tag's low bits.
#[inline]
fn tag_size(tag: u64) -> PageSize {
    match tag & 3 {
        0 => PageSize::Size4K,
        1 => PageSize::Size2M,
        2 => PageSize::Size1G,
        _ => unreachable!("invalid slots are filtered before decoding"),
    }
}

/// Bitmask of lanes in `tags` equal to `tag` (bit `i` set ⇔ `tags[i] ==
/// tag`).
///
/// The scan runs over fixed-width 8-lane chunks so LLVM autovectorizes the
/// compares; `tags.len()` is bounded by [`MAX_WAYS`], so the mask fits a
/// `u128`.
#[inline]
fn match_mask(tags: &[u64], tag: u64) -> u128 {
    debug_assert!(tags.len() <= MAX_WAYS);
    let mut mask = 0u128;
    let mut lane = 0u32;
    let mut chunks = tags.chunks_exact(8);
    for chunk in &mut chunks {
        let c: [u64; 8] = chunk.try_into().expect("exact 8-lane chunk");
        let mut m = 0u32;
        for (i, &t) in c.iter().enumerate() {
            m |= u32::from(t == tag) << i;
        }
        mask |= u128::from(m) << lane;
        lane += 8;
    }
    for (i, &t) in chunks.remainder().iter().enumerate() {
        mask |= u128::from(t == tag) << (lane + i as u32);
    }
    mask
}

/// Like [`match_mask`] against any of three candidate tags in one pass
/// (the size-agnostic fully associative lookup).
#[inline]
fn match_mask3(tags: &[u64], candidates: [u64; 3]) -> u128 {
    debug_assert!(tags.len() <= MAX_WAYS);
    let [c0, c1, c2] = candidates;
    let mut mask = 0u128;
    let mut lane = 0u32;
    let mut chunks = tags.chunks_exact(8);
    for chunk in &mut chunks {
        let c: [u64; 8] = chunk.try_into().expect("exact 8-lane chunk");
        let mut m = 0u32;
        for (i, &t) in c.iter().enumerate() {
            m |= u32::from(t == c0 || t == c1 || t == c2) << i;
        }
        mask |= u128::from(m) << lane;
        lane += 8;
    }
    for (i, &t) in chunks.remainder().iter().enumerate() {
        mask |= u128::from(t == c0 || t == c1 || t == c2) << (lane + i as u32);
    }
    mask
}

/// A set-associative page TLB with per-set true-LRU replacement and
/// Albonesi-style *way-disabling*.
///
/// The structure is partitioned into `ways` subarrays; at any time only
/// `active_ways()` of them (a power of two, chosen by the Lite mechanism) are
/// searched and filled. Disabling ways invalidates their entries — TLBs are
/// read-only so no write-back is needed — and re-enabled ways come back
/// empty, exactly as §4.2.3 of the paper requires.
///
/// Multiple page sizes may coexist in one structure (the unified L2 TLB and
/// the TLB_PP organization); the lookup is then indexed by the actual page
/// size of the reference, modelling a perfect page-size predictor.
///
/// # Storage layout
///
/// The slots are held structure-of-arrays: a packed `u64` tag lane (the
/// size-aligned VPN fused with a 2-bit size code — one comparison replaces
/// the `size() == size && covers(va)` pair), a `u8` recency lane, and a
/// payload lane holding wrapping `pfn - vpn` deltas (a hit reconstructs
/// the PFN with one wrapping add from the tag it already matched). A probe
/// therefore scans a contiguous run of at most `active_ways` tag words and
/// touches the payload only on a hit, which is what makes the simulator's
/// hot loop memory-bound on the trace, not on the TLB model.
///
/// The structure additionally keeps per-size-class occupancy counts (the
/// page-size *skip masks*): a lookup for a size class the structure holds
/// zero entries of is a guaranteed miss and skips the tag scan entirely.
/// Energy accounting is unaffected — the pipeline layer charges the
/// paper's parallel-probe energy per structure regardless of whether the
/// model shortcut the scan.
///
/// # Examples
///
/// ```
/// use eeat_tlb::{PageTranslation, SetAssocTlb};
/// use eeat_types::{PageSize, Pfn, VirtAddr, Vpn};
///
/// let mut tlb = SetAssocTlb::new("L1-4KB", 64, 4, PageSize::Size4K);
/// tlb.insert(PageTranslation::new(Vpn::new(3), Pfn::new(8), PageSize::Size4K));
/// tlb.set_active_ways(1); // Lite downsizes to 16 entries direct-mapped
/// assert_eq!(tlb.active_capacity(), 16);
/// // The MRU entry of each set survives; conflicting fills now evict it.
/// assert!(tlb.lookup(VirtAddr::new(3 * 4096)).is_some());
/// tlb.insert(PageTranslation::new(Vpn::new(3 + 16), Pfn::new(9), PageSize::Size4K));
/// assert!(tlb.lookup(VirtAddr::new(3 * 4096)).is_none());
/// ```
#[derive(Clone, Debug)]
pub struct SetAssocTlb {
    name: &'static str,
    /// Packed tag lane: `encode_tag(vpn, size)` per slot, [`INVALID_TAG`]
    /// when empty. Scanned on every probe.
    tags: Vec<u64>,
    /// `recency[i]` is the LRU rank of slot `i` among the active ways of its
    /// set: 0 = MRU … `active_ways - 1` = LRU. Values of inactive ways are
    /// meaningless.
    recency: Vec<u8>,
    /// Payload lane: wrapping `pfn - vpn` delta per slot, read only after a
    /// tag match (the PFN is `(tag >> 2).wrapping_add(delta)` — exact,
    /// since wrapping subtraction/addition round-trip on `u64`).
    pfn_deltas: Vec<u64>,
    /// ASID lane: `asid | ASID_GLOBAL?` per slot, meaningful only where the
    /// tag is valid. All zeros (ASID 0, non-global) in single-context use.
    asids: Vec<u16>,
    sets: usize,
    ways: usize,
    active_ways: usize,
    default_size: PageSize,
    /// The ASID lookups and fills run under (the CR3 PCID). Defaults to 0,
    /// which keeps single-context behaviour bit-identical to the pre-ASID
    /// structure.
    current_asid: u16,
    /// Valid-entry count per page-size class, indexed by [`size_code`]:
    /// the skip masks. A lookup whose class counts zero is a guaranteed
    /// miss and skips the tag scan.
    size_occupancy: [u32; 3],
    /// Total valid entries (the sum of `size_occupancy`), kept separately
    /// so [`occupancy`](Self::occupancy) and the size-agnostic early-out
    /// are O(1).
    valid: u32,
    stats: TlbStats,
}

impl SetAssocTlb {
    /// Creates an empty TLB with `entries` total slots and `ways`
    /// associativity, all ways active.
    ///
    /// `default_size` is the page size used by [`lookup`](Self::lookup) and
    /// determines the index bits of single-size structures.
    ///
    /// # Panics
    ///
    /// Panics unless `ways` and `entries / ways` are non-zero powers of two,
    /// `entries` is a multiple of `ways`, and `ways <= `[`MAX_WAYS`].
    pub fn new(name: &'static str, entries: usize, ways: usize, default_size: PageSize) -> Self {
        assert!(
            ways.is_power_of_two() && ways > 0,
            "ways must be a power of two"
        );
        assert!(
            ways <= MAX_WAYS,
            "ways above MAX_WAYS ({MAX_WAYS}) unsupported: rank counters are u8"
        );
        assert!(
            entries.is_multiple_of(ways),
            "entries must divide evenly into ways"
        );
        let sets = entries / ways;
        assert!(
            sets.is_power_of_two() && sets > 0,
            "sets must be a power of two"
        );
        Self {
            name,
            tags: vec![INVALID_TAG; entries],
            recency: (0..entries).map(|i| (i % ways) as u8).collect(),
            pfn_deltas: vec![0; entries],
            asids: vec![0; entries],
            sets,
            ways,
            active_ways: ways,
            default_size,
            current_asid: 0,
            size_occupancy: [0; 3],
            valid: 0,
            stats: TlbStats::new(),
        }
    }

    /// Sets the ASID subsequent lookups and fills run under (an ASID-tagged
    /// context switch: the structure's contents survive, only visibility
    /// changes).
    ///
    /// # Panics
    ///
    /// Panics when `asid` exceeds [`ASID_MASK`].
    pub fn set_current_asid(&mut self, asid: u16) {
        assert!(asid <= ASID_MASK, "ASID exceeds {ASID_BITS} bits");
        self.current_asid = asid;
    }

    /// The ASID lookups currently run under.
    pub fn current_asid(&self) -> u16 {
        self.current_asid
    }

    /// The structure's display name (e.g. `"L1-4KB"`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Total number of slots (active or not).
    pub fn capacity(&self) -> usize {
        self.tags.len()
    }

    /// Number of sets (constant across resizing).
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Physical associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Currently active (searched and filled) ways.
    pub fn active_ways(&self) -> usize {
        self.active_ways
    }

    /// Number of currently usable slots: `sets * active_ways`.
    pub fn active_capacity(&self) -> usize {
        self.sets * self.active_ways
    }

    /// The page size assumed by [`lookup`](Self::lookup).
    pub fn default_size(&self) -> PageSize {
        self.default_size
    }

    /// Event counters.
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    /// Resets the event counters (the contents are untouched).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    #[inline]
    fn set_index(&self, va: VirtAddr, size: PageSize) -> usize {
        ((va.raw() >> size.shift()) as usize) & (self.sets - 1)
    }

    /// Reconstructs the translation held in `slot`, if any.
    #[inline]
    fn slot_translation(&self, slot: usize) -> Option<PageTranslation> {
        let tag = self.tags[slot];
        if tag == INVALID_TAG {
            return None;
        }
        Some(PageTranslation::new(
            Vpn::new(tag >> 2),
            Pfn::new((tag >> 2).wrapping_add(self.pfn_deltas[slot])),
            tag_size(tag),
        ))
    }

    /// Looks up `va` assuming the structure's default page size.
    ///
    /// On a hit the entry is promoted to MRU and its pre-promotion recency
    /// rank is reported for Lite's LRU-distance counters.
    #[inline]
    pub fn lookup(&mut self, va: VirtAddr) -> Option<Hit> {
        self.lookup_for_size(va, self.default_size)
    }

    /// Looks up `va` as a reference to a page of `size` (mixed-size
    /// structures are indexed by the actual page size — the perfect
    /// prediction assumption of TLB_PP).
    #[inline]
    pub fn lookup_for_size(&mut self, va: VirtAddr, size: PageSize) -> Option<Hit> {
        // Page-size skip mask: a structure holding zero entries of this
        // size class cannot hit, so skip the indexing and tag scan. The
        // miss is still recorded — behaviourally this is the same probe,
        // just resolved without reading the arrays.
        if self.size_occupancy[size_code(size)] == 0 {
            self.stats.record_miss();
            return None;
        }
        let tag = lookup_tag(va, size);
        let base = self.set_index(va, size) * self.ways;
        let cur = self.current_asid;
        // The tag compare runs as a branch-free mask build over one
        // contiguous `u64` run (see `match_mask`); the ASID lane is
        // consulted per matching way in ascending way order, preserving
        // first-match semantics.
        let mut mask = match_mask(&self.tags[base..base + self.active_ways], tag);
        while mask != 0 {
            let way = mask.trailing_zeros() as usize;
            let slot = base + way;
            if asid_visible(self.asids[slot], cur) {
                let rank = self.recency[slot];
                self.touch(base, slot, rank);
                self.stats.record_hit();
                return Some(Hit {
                    translation: PageTranslation::new(
                        Vpn::new(tag >> 2),
                        Pfn::new((tag >> 2).wrapping_add(self.pfn_deltas[slot])),
                        size,
                    ),
                    rank,
                });
            }
            mask &= mask - 1;
        }
        self.stats.record_miss();
        None
    }

    /// Looks up `va` matching entries of *any* page size — only meaningful
    /// for fully associative structures, where no index bits depend on the
    /// page size (the SPARC/AMD-style mixed L1 TLB of the paper's §4.4).
    ///
    /// # Panics
    ///
    /// Panics when the structure has more than one set: a set-associative
    /// lookup cannot be size-agnostic (the index depends on the size).
    #[inline]
    pub fn lookup_any_size(&mut self, va: VirtAddr) -> Option<Hit> {
        assert_eq!(
            self.sets, 1,
            "size-agnostic lookup requires full associativity"
        );
        // Skip mask: an empty structure is a guaranteed miss.
        if self.valid == 0 {
            self.stats.record_miss();
            return None;
        }
        // An entry of size `s` covers `va` exactly when its tag equals the
        // size-`s` lookup tag, so three precomputed candidates cover every
        // page size in a single pass over the tag lane.
        let candidates = [
            lookup_tag(va, PageSize::Size4K),
            lookup_tag(va, PageSize::Size2M),
            lookup_tag(va, PageSize::Size1G),
        ];
        let mut mask = match_mask3(&self.tags[..self.active_ways], candidates);
        while mask != 0 {
            let way = mask.trailing_zeros() as usize;
            if asid_visible(self.asids[way], self.current_asid) {
                let tag = self.tags[way];
                let rank = self.recency[way];
                self.touch(0, way, rank);
                self.stats.record_hit();
                return Some(Hit {
                    translation: PageTranslation::new(
                        Vpn::new(tag >> 2),
                        Pfn::new((tag >> 2).wrapping_add(self.pfn_deltas[way])),
                        tag_size(tag),
                    ),
                    rank,
                });
            }
            mask &= mask - 1;
        }
        self.stats.record_miss();
        None
    }

    /// Probes for a matching entry without affecting LRU state or counters.
    #[inline]
    pub fn probe(&self, va: VirtAddr, size: PageSize) -> Option<PageTranslation> {
        if self.size_occupancy[size_code(size)] == 0 {
            return None;
        }
        let tag = lookup_tag(va, size);
        let base = self.set_index(va, size) * self.ways;
        (0..self.active_ways)
            .map(|way| base + way)
            .find(|&slot| {
                self.tags[slot] == tag && asid_visible(self.asids[slot], self.current_asid)
            })
            .map(|slot| {
                PageTranslation::new(
                    Vpn::new(tag >> 2),
                    Pfn::new((tag >> 2).wrapping_add(self.pfn_deltas[slot])),
                    size,
                )
            })
    }

    /// Inserts `translation` under the current ASID, evicting the set's LRU
    /// active entry if needed.
    ///
    /// If an entry with the same tag is already visible to this ASID it is
    /// overwritten in place (and promoted), so no lookup ever sees two
    /// matching entries. Entries of *other* ASIDs with the same tag are left
    /// alone — each address space owns its own copy.
    #[inline]
    pub fn insert(&mut self, translation: PageTranslation) {
        self.insert_tagged(translation, self.current_asid);
    }

    /// Inserts `translation` with the global bit set: the entry is visible
    /// to (and shadows the tag for) every ASID, like a kernel mapping with
    /// the PTE global flag.
    pub fn insert_global(&mut self, translation: PageTranslation) {
        self.insert_tagged(translation, self.current_asid | ASID_GLOBAL);
    }

    fn insert_tagged(&mut self, translation: PageTranslation, lane: u16) {
        let tag = encode_tag(translation.vpn(), translation.size());
        let va = translation.vpn().base_addr();
        let base = self.set_index(va, translation.size()) * self.ways;

        // Overwrite a shadowing duplicate or pick an invalid slot, else
        // evict true LRU. A global insert may shadow same-tag entries of
        // several ASIDs at once; the first is overwritten in place (the
        // single-context path, bit-identical to the pre-ASID structure) and
        // the rest are invalidated so at most one entry stays visible per
        // (tag, ASID).
        let mut dup = None;
        let mut invalid = None;
        let mut shadowed = 0u64;
        for way in 0..self.active_ways {
            let slot = base + way;
            if self.tags[slot] == tag && asid_overlaps(self.asids[slot], lane) {
                if dup.is_none() {
                    dup = Some(slot);
                } else {
                    self.clear_slot(base, slot);
                    shadowed += 1;
                }
            } else if invalid.is_none() && self.tags[slot] == INVALID_TAG {
                invalid = Some(slot);
            }
        }
        if shadowed > 0 {
            self.stats.record_invalidations(shadowed);
        }
        let slot = dup.or(invalid).unwrap_or_else(|| {
            let lru_rank = (self.active_ways - 1) as u8;
            (base..base + self.active_ways)
                .find(|&s| self.recency[s] == lru_rank)
                .expect("one active slot always holds the LRU rank")
        });

        // Skip-mask bookkeeping: retire the outgoing entry's class (a dup
        // of the same tag nets out; an evicted victim may be of another
        // class) and count the incoming one.
        let old = self.tags[slot];
        if old == INVALID_TAG {
            self.valid += 1;
        } else {
            self.size_occupancy[(old & 3) as usize] -= 1;
        }
        self.size_occupancy[(tag & 3) as usize] += 1;

        self.tags[slot] = tag;
        self.pfn_deltas[slot] = translation
            .pfn()
            .raw()
            .wrapping_sub(translation.vpn().raw());
        self.asids[slot] = lane;
        let rank = self.recency[slot];
        self.touch(base, slot, rank);
        self.stats.record_fill();
    }

    /// Promotes `slot` (with pre-promotion `rank`) to MRU within its set.
    #[inline]
    fn touch(&mut self, base: usize, slot: usize, rank: u8) {
        let set = &mut self.recency[base..base + self.active_ways];
        for r in set.iter_mut() {
            *r += u8::from(*r < rank);
        }
        self.recency[slot] = 0;
    }

    /// Invalidates `slot`, demoting it to the LRU end of its set while the
    /// survivors close ranks (the rank permutation stays intact). Does not
    /// touch the stats.
    fn clear_slot(&mut self, base: usize, slot: usize) {
        let old = self.tags[slot];
        debug_assert!(old != INVALID_TAG, "clear_slot expects a valid entry");
        self.size_occupancy[(old & 3) as usize] -= 1;
        self.valid -= 1;
        self.tags[slot] = INVALID_TAG;
        let rank = self.recency[slot];
        for s in base..base + self.active_ways {
            if self.recency[s] > rank {
                self.recency[s] -= 1;
            }
        }
        self.recency[slot] = (self.active_ways - 1) as u8;
    }

    /// Resizes the structure to `ways` active ways (way-disabling /
    /// re-enabling).
    ///
    /// Downsizing invalidates the entries of the disabled ways and compacts
    /// the survivors' LRU ranks; re-enabled ways come back empty at the LRU
    /// end. No-op when `ways == active_ways()`.
    ///
    /// # Panics
    ///
    /// Panics unless `ways` is a power of two in `1..=self.ways()`.
    pub fn set_active_ways(&mut self, ways: usize) {
        assert!(
            ways.is_power_of_two() && ways >= 1 && ways <= self.ways,
            "active ways must be a power of two within the physical ways"
        );
        if ways == self.active_ways {
            return;
        }
        let old_active = self.active_ways;
        let mut invalidated = 0u64;

        for set in 0..self.sets {
            let base = set * self.ways;
            if ways < old_active {
                // Keep the `ways` most recently used survivors in physical
                // ways 0..ways (hardware would keep the enabled subarrays;
                // reordering slots is equivalent for a behavioural model).
                // Ranks are a permutation per set, so the unstable sort is
                // deterministic.
                let mut keep: Vec<(u8, u64, u64, u16)> = (0..old_active)
                    .map(|w| {
                        (
                            self.recency[base + w],
                            self.tags[base + w],
                            self.pfn_deltas[base + w],
                            self.asids[base + w],
                        )
                    })
                    .collect();
                keep.sort_unstable_by_key(|&(rank, _, _, _)| rank);
                for (w, &(_, tag, delta, lane)) in keep.iter().take(ways).enumerate() {
                    self.tags[base + w] = tag;
                    self.pfn_deltas[base + w] = delta;
                    self.asids[base + w] = lane;
                    self.recency[base + w] = w as u8;
                }
                invalidated += keep
                    .iter()
                    .skip(ways)
                    .filter(|&&(_, tag, _, _)| tag != INVALID_TAG)
                    .count() as u64;
                for w in ways..self.ways {
                    self.tags[base + w] = INVALID_TAG;
                    self.recency[base + w] = w as u8;
                }
            } else {
                // Re-enable: fresh ways join empty at the LRU end.
                for w in old_active..ways {
                    self.tags[base + w] = INVALID_TAG;
                    self.recency[base + w] = w as u8;
                }
            }
        }
        self.stats.record_invalidations(invalidated);
        self.active_ways = ways;
        // Resizes are rare (epoch boundaries): a full recount is simpler
        // than threading per-class decrements through the keep-sort.
        self.recount_occupancy();
    }

    /// Rebuilds the skip-mask counters from the tag lane — for the cold
    /// bulk-mutation paths where incremental maintenance isn't worth it.
    fn recount_occupancy(&mut self) {
        let mut size_occupancy = [0u32; 3];
        let mut valid = 0u32;
        for &tag in &self.tags {
            if tag != INVALID_TAG {
                size_occupancy[(tag & 3) as usize] += 1;
                valid += 1;
            }
        }
        self.size_occupancy = size_occupancy;
        self.valid = valid;
    }

    /// Invalidates every entry covering `va`, regardless of page size or
    /// ASID — the per-page TLB shootdown (`invlpg`). Entries of any size
    /// whose page contains `va` are removed; everything else survives.
    /// Returns the number of entries removed (counted as invalidations in
    /// the stats).
    pub fn invalidate(&mut self, va: VirtAddr) -> u64 {
        self.invalidate_matching(|e, _| e.covers(va))
    }

    /// Invalidates every entry whose page overlaps `range` (the multi-page
    /// shootdown of e.g. an `munmap`), regardless of ASID. Returns the
    /// number of entries removed.
    pub fn invalidate_range(&mut self, range: VirtRange) -> u64 {
        self.invalidate_matching(|e, _| {
            page_overlaps(e.vpn().base_addr().raw(), e.size().bytes(), range)
        })
    }

    /// The ASID-targeted shootdown a cross-core invalidation IPI delivers:
    /// removes entries covering `va` that belong to `asid`. Global entries
    /// survive — they are not owned by any one address space. Returns the
    /// number of entries removed.
    pub fn invalidate_asid(&mut self, asid: u16, va: VirtAddr) -> u64 {
        self.invalidate_matching(|e, lane| {
            lane & ASID_GLOBAL == 0 && lane & ASID_MASK == asid && e.covers(va)
        })
    }

    /// The ASID-targeted multi-page shootdown: removes `asid`'s non-global
    /// entries whose page overlaps `range`. Returns the number removed.
    pub fn invalidate_range_asid(&mut self, asid: u16, range: VirtRange) -> u64 {
        self.invalidate_matching(|e, lane| {
            lane & ASID_GLOBAL == 0
                && lane & ASID_MASK == asid
                && page_overlaps(e.vpn().base_addr().raw(), e.size().bytes(), range)
        })
    }

    /// Removes every non-global entry of `asid` (ASID recycling: the ASID
    /// space wrapped and the identifier is being handed to a new address
    /// space). Global entries survive. Returns the number removed.
    pub fn flush_asid(&mut self, asid: u16) -> u64 {
        self.invalidate_matching(|_, lane| lane & ASID_GLOBAL == 0 && lane & ASID_MASK == asid)
    }

    /// Removes every active entry matching `pred` (which sees the entry and
    /// its ASID lane word), keeping each set's LRU ranks a permutation: the
    /// vacated slot is demoted to the LRU end and the survivors close ranks.
    fn invalidate_matching(&mut self, mut pred: impl FnMut(&PageTranslation, u16) -> bool) -> u64 {
        let mut removed = 0u64;
        for set in 0..self.sets {
            let base = set * self.ways;
            for way in 0..self.active_ways {
                let slot = base + way;
                let Some(entry) = self.slot_translation(slot) else {
                    continue;
                };
                if !pred(&entry, self.asids[slot]) {
                    continue;
                }
                self.clear_slot(base, slot);
                removed += 1;
            }
        }
        self.stats.record_invalidations(removed);
        removed
    }

    /// Invalidates every entry — including globals — with active ways
    /// staying as configured (a full flush, e.g. a CR4 toggle).
    pub fn flush(&mut self) {
        self.stats.record_invalidations(u64::from(self.valid));
        for (i, tag) in self.tags.iter_mut().enumerate() {
            *tag = INVALID_TAG;
            self.recency[i] = (i % self.ways) as u8;
            self.asids[i] = 0;
        }
        self.size_occupancy = [0; 3];
        self.valid = 0;
    }

    /// Number of valid entries currently held (O(1): maintained as the
    /// skip-mask counters' total).
    pub fn occupancy(&self) -> usize {
        self.valid as usize
    }

    /// Checks internal invariants; meant for tests and debugging.
    ///
    /// # Panics
    ///
    /// Panics if the active ways of any set do not hold a permutation of the
    /// LRU ranks `0..active_ways`, an inactive way holds a valid entry, a
    /// valid slot fails to decode into an aligned translation, or the
    /// skip-mask occupancy counters disagree with the tag lane.
    pub fn assert_invariants(&self) {
        // Skip-mask counters must track the tag lane exactly: a stale
        // zero would turn real hits into guaranteed misses.
        let mut size_occupancy = [0u32; 3];
        for &tag in &self.tags {
            if tag != INVALID_TAG {
                size_occupancy[(tag & 3) as usize] += 1;
            }
        }
        assert_eq!(
            self.size_occupancy, size_occupancy,
            "size-class occupancy counters diverged from the tag lane"
        );
        assert_eq!(
            self.valid,
            size_occupancy.iter().sum::<u32>(),
            "total valid count diverged from the tag lane"
        );
        for set in 0..self.sets {
            let base = set * self.ways;
            let mut seen = vec![false; self.active_ways];
            for w in 0..self.active_ways {
                let rank = self.recency[base + w] as usize;
                assert!(rank < self.active_ways, "rank out of range in set {set}");
                assert!(!seen[rank], "duplicate rank in set {set}");
                seen[rank] = true;
                // PageTranslation::new re-checks VPN/PFN alignment.
                let _ = self.slot_translation(base + w);
            }
            for w in self.active_ways..self.ways {
                assert!(
                    self.tags[base + w] == INVALID_TAG,
                    "inactive way {w} of set {set} holds a valid entry"
                );
            }
            // No two valid entries of one set may shadow each other: a
            // lookup under any ASID must match at most one slot.
            for a in 0..self.active_ways {
                for b in a + 1..self.active_ways {
                    let (sa, sb) = (base + a, base + b);
                    assert!(
                        self.tags[sa] == INVALID_TAG
                            || self.tags[sa] != self.tags[sb]
                            || !asid_overlaps(self.asids[sa], self.asids[sb]),
                        "set {set}: ways {a} and {b} hold shadowing entries for one tag"
                    );
                }
            }
        }
    }
}

impl fmt::Display for SetAssocTlb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} entries, {}/{} ways active, {}",
            self.name,
            self.capacity(),
            self.active_ways,
            self.ways,
            self.stats
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eeat_types::{Pfn, Vpn};

    fn t4k(vpn: u64) -> PageTranslation {
        PageTranslation::new(Vpn::new(vpn), Pfn::new(vpn + 1000), PageSize::Size4K)
    }

    fn va4k(vpn: u64) -> VirtAddr {
        Vpn::new(vpn).base_addr()
    }

    #[test]
    fn miss_then_hit() {
        let mut tlb = SetAssocTlb::new("t", 64, 4, PageSize::Size4K);
        assert!(tlb.lookup(va4k(5)).is_none());
        tlb.insert(t4k(5));
        let hit = tlb.lookup(va4k(5)).expect("hit after fill");
        assert_eq!(hit.translation, t4k(5));
        assert_eq!(tlb.stats().hits(), 1);
        assert_eq!(tlb.stats().misses(), 1);
        assert_eq!(tlb.stats().fills(), 1);
        tlb.assert_invariants();
    }

    #[test]
    fn lru_ranks_reported() {
        let mut tlb = SetAssocTlb::new("t", 64, 4, PageSize::Size4K);
        // Four pages mapping to the same set (16 sets => stride 16 pages).
        for i in 0..4 {
            tlb.insert(t4k(16 * i));
        }
        // Most recent insert is MRU; the first one is LRU (rank 3).
        assert_eq!(tlb.lookup(va4k(48)).unwrap().rank, 0);
        assert_eq!(tlb.lookup(va4k(0)).unwrap().rank, 3);
        // After touching page 0 it becomes MRU.
        assert_eq!(tlb.lookup(va4k(0)).unwrap().rank, 0);
        tlb.assert_invariants();
    }

    #[test]
    fn true_lru_eviction() {
        let mut tlb = SetAssocTlb::new("t", 64, 4, PageSize::Size4K);
        for i in 0..4 {
            tlb.insert(t4k(16 * i));
        }
        tlb.lookup(va4k(0)); // protect the oldest entry
        tlb.insert(t4k(16 * 4)); // evicts vpn 16 (now LRU)
        assert!(tlb.probe(va4k(0), PageSize::Size4K).is_some());
        assert!(tlb.probe(va4k(16), PageSize::Size4K).is_none());
        assert!(tlb.probe(va4k(64), PageSize::Size4K).is_some());
        tlb.assert_invariants();
    }

    #[test]
    fn duplicate_insert_overwrites() {
        let mut tlb = SetAssocTlb::new("t", 16, 4, PageSize::Size4K);
        tlb.insert(t4k(8));
        let newer = PageTranslation::new(Vpn::new(8), Pfn::new(99), PageSize::Size4K);
        tlb.insert(newer);
        assert_eq!(tlb.occupancy(), 1);
        assert_eq!(tlb.probe(va4k(8), PageSize::Size4K), Some(newer));
    }

    #[test]
    fn way_disabling_invalidates() {
        let mut tlb = SetAssocTlb::new("t", 64, 4, PageSize::Size4K);
        for i in 0..4 {
            tlb.insert(t4k(16 * i));
        }
        tlb.set_active_ways(2);
        assert_eq!(tlb.active_ways(), 2);
        // The two MRU entries survive.
        assert!(tlb.probe(va4k(32), PageSize::Size4K).is_some());
        assert!(tlb.probe(va4k(48), PageSize::Size4K).is_some());
        assert!(tlb.probe(va4k(0), PageSize::Size4K).is_none());
        assert!(tlb.probe(va4k(16), PageSize::Size4K).is_none());
        assert_eq!(tlb.stats().invalidations(), 2);
        tlb.assert_invariants();
    }

    #[test]
    fn reenabling_comes_back_empty() {
        let mut tlb = SetAssocTlb::new("t", 64, 4, PageSize::Size4K);
        for i in 0..4 {
            tlb.insert(t4k(16 * i));
        }
        tlb.set_active_ways(1);
        tlb.set_active_ways(4);
        // Only the single survivor of the 1-way period remains.
        assert_eq!(tlb.occupancy(), 1);
        assert!(tlb.probe(va4k(48), PageSize::Size4K).is_some());
        tlb.assert_invariants();
        // And the structure is fully usable again.
        for i in 0..4 {
            tlb.insert(t4k(16 * i));
        }
        assert_eq!(tlb.occupancy(), 4);
    }

    #[test]
    fn one_way_behaves_direct_mapped() {
        let mut tlb = SetAssocTlb::new("t", 64, 4, PageSize::Size4K);
        tlb.set_active_ways(1);
        tlb.insert(t4k(0));
        tlb.insert(t4k(16)); // same set, conflicts
        assert!(tlb.probe(va4k(0), PageSize::Size4K).is_none());
        assert!(tlb.probe(va4k(16), PageSize::Size4K).is_some());
        assert_eq!(tlb.active_capacity(), 16);
    }

    #[test]
    fn mixed_sizes_coexist() {
        let mut tlb = SetAssocTlb::new("L2", 512, 4, PageSize::Size4K);
        tlb.insert(t4k(7));
        let huge = PageTranslation::new(Vpn::new(512), Pfn::new(1024), PageSize::Size2M);
        tlb.insert(huge);
        assert!(tlb.lookup_for_size(va4k(7), PageSize::Size4K).is_some());
        assert!(tlb
            .lookup_for_size(VirtAddr::new(512 * 4096 + 555), PageSize::Size2M)
            .is_some());
        // A 4 KiB-indexed lookup of the huge-page region misses: sizes differ.
        assert!(tlb
            .lookup_for_size(VirtAddr::new(512 * 4096), PageSize::Size4K)
            .is_none());
    }

    #[test]
    fn invalidate_removes_only_the_covering_entry() {
        let mut tlb = SetAssocTlb::new("t", 64, 4, PageSize::Size4K);
        for i in 0..4 {
            tlb.insert(t4k(16 * i));
        }
        assert_eq!(tlb.invalidate(va4k(16)), 1);
        assert!(tlb.probe(va4k(16), PageSize::Size4K).is_none());
        for vpn in [0, 32, 48] {
            assert!(tlb.probe(va4k(vpn), PageSize::Size4K).is_some());
        }
        assert_eq!(tlb.stats().invalidations(), 1);
        tlb.assert_invariants();
        // The vacated slot is the next eviction victim: filling the set again
        // evicts nobody.
        tlb.insert(t4k(16 * 4));
        assert_eq!(tlb.occupancy(), 4);
        for vpn in [0, 32, 48, 64] {
            assert!(tlb.probe(va4k(vpn), PageSize::Size4K).is_some());
        }
    }

    #[test]
    fn invalidate_matches_any_page_size() {
        let mut tlb = SetAssocTlb::new("L2", 512, 4, PageSize::Size4K);
        tlb.insert(t4k(7));
        let huge = PageTranslation::new(Vpn::new(512), Pfn::new(1024), PageSize::Size2M);
        tlb.insert(huge);
        // An address in the middle of the 2 MiB page takes out the huge entry
        // but not the unrelated 4 KiB one.
        assert_eq!(tlb.invalidate(VirtAddr::new(512 * 4096 + 12345)), 1);
        assert!(tlb
            .probe(VirtAddr::new(512 * 4096), PageSize::Size2M)
            .is_none());
        assert!(tlb.probe(va4k(7), PageSize::Size4K).is_some());
        tlb.assert_invariants();
    }

    #[test]
    fn invalidate_range_takes_overlapping_pages() {
        let mut tlb = SetAssocTlb::new("t", 64, 4, PageSize::Size4K);
        for vpn in [3u64, 4, 5, 40] {
            tlb.insert(t4k(vpn));
        }
        // A range covering pages 4..6 removes vpn 4 and 5 only.
        let range = VirtRange::new(va4k(4), 2 * 4096);
        assert_eq!(tlb.invalidate_range(range), 2);
        assert!(tlb.probe(va4k(3), PageSize::Size4K).is_some());
        assert!(tlb.probe(va4k(4), PageSize::Size4K).is_none());
        assert!(tlb.probe(va4k(5), PageSize::Size4K).is_none());
        assert!(tlb.probe(va4k(40), PageSize::Size4K).is_some());
        tlb.assert_invariants();
    }

    #[test]
    fn invalidate_range_handles_topmost_page() {
        // The last 4 KiB page of the address space: `base + 4096` wraps to
        // zero, which the inclusive overlap arithmetic must tolerate.
        let mut tlb = SetAssocTlb::new("t", 64, 4, PageSize::Size4K);
        let top = (1u64 << 52) - 1;
        tlb.insert(t4k(top));
        tlb.insert(t4k(3));
        // [u64::MAX - 8191, u64::MAX): covers the top page, not vpn 3.
        let shot = VirtRange::new(VirtAddr::new(u64::MAX - 8191), 8191);
        assert_eq!(tlb.invalidate_range(shot), 1);
        assert!(tlb.probe(va4k(top), PageSize::Size4K).is_none());
        assert!(tlb.probe(va4k(3), PageSize::Size4K).is_some());
        tlb.assert_invariants();
    }

    #[test]
    fn invalidate_range_asid_handles_topmost_page() {
        let mut tlb = SetAssocTlb::new("t", 64, 4, PageSize::Size4K);
        let top = (1u64 << 52) - 1;
        tlb.set_current_asid(2);
        tlb.insert(t4k(top));
        tlb.set_current_asid(5);
        tlb.insert(t4k(top));
        let shot = VirtRange::new(VirtAddr::new(u64::MAX - 8191), 8191);
        // Only ASID 2's copy of the top page goes.
        assert_eq!(tlb.invalidate_range_asid(2, shot), 1);
        assert!(tlb.probe(va4k(top), PageSize::Size4K).is_some());
        tlb.set_current_asid(2);
        assert!(tlb.probe(va4k(top), PageSize::Size4K).is_none());
        tlb.assert_invariants();
    }

    #[test]
    fn invalidate_miss_is_a_no_op() {
        let mut tlb = SetAssocTlb::new("t", 64, 4, PageSize::Size4K);
        tlb.insert(t4k(1));
        let stats_before = *tlb.stats();
        assert_eq!(tlb.invalidate(va4k(99)), 0);
        assert_eq!(tlb.stats().invalidations(), stats_before.invalidations());
        assert_eq!(tlb.occupancy(), 1);
        tlb.assert_invariants();
    }

    #[test]
    fn flush_empties() {
        let mut tlb = SetAssocTlb::new("t", 64, 4, PageSize::Size4K);
        for i in 0..10 {
            tlb.insert(t4k(i));
        }
        tlb.flush();
        assert_eq!(tlb.occupancy(), 0);
        assert_eq!(tlb.stats().invalidations(), 10);
        tlb.assert_invariants();
    }

    #[test]
    fn geometry_accessors() {
        let tlb = SetAssocTlb::new("L1-4KB", 64, 4, PageSize::Size4K);
        assert_eq!(tlb.sets(), 16);
        assert_eq!(tlb.ways(), 4);
        assert_eq!(tlb.capacity(), 64);
        assert_eq!(tlb.name(), "L1-4KB");
        assert_eq!(tlb.default_size(), PageSize::Size4K);
        assert!(tlb.to_string().contains("4/4 ways"));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_rejected() {
        let _ = SetAssocTlb::new("t", 48, 3, PageSize::Size4K);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_resize_rejected() {
        let mut tlb = SetAssocTlb::new("t", 64, 4, PageSize::Size4K);
        tlb.set_active_ways(3);
    }

    #[test]
    fn max_ways_boundary_accepted() {
        // Exactly MAX_WAYS ways is the documented ceiling and must work,
        // including LRU wraparound at the largest rank (MAX_WAYS - 1).
        let mut tlb = SetAssocTlb::new("t", MAX_WAYS, MAX_WAYS, PageSize::Size4K);
        for i in 0..MAX_WAYS as u64 {
            tlb.insert(t4k(i));
        }
        assert_eq!(tlb.occupancy(), MAX_WAYS);
        assert_eq!(
            tlb.lookup(va4k(0)).unwrap().rank,
            (MAX_WAYS - 1) as u8,
            "oldest entry sits at the LRU rank"
        );
        tlb.insert(t4k(MAX_WAYS as u64)); // evicts the new LRU (vpn 1)
        assert!(tlb.probe(va4k(1), PageSize::Size4K).is_none());
        tlb.assert_invariants();
    }

    #[test]
    #[should_panic(expected = "MAX_WAYS")]
    fn above_max_ways_rejected() {
        let _ = SetAssocTlb::new("t", 2 * MAX_WAYS, 2 * MAX_WAYS, PageSize::Size4K);
    }

    #[test]
    fn probe_does_not_disturb() {
        let mut tlb = SetAssocTlb::new("t", 64, 4, PageSize::Size4K);
        tlb.insert(t4k(0));
        let before = *tlb.stats();
        tlb.probe(va4k(0), PageSize::Size4K);
        assert_eq!(*tlb.stats(), before);
    }

    #[test]
    fn asid_isolates_address_spaces() {
        let mut tlb = SetAssocTlb::new("t", 64, 4, PageSize::Size4K);
        tlb.set_current_asid(1);
        tlb.insert(t4k(5));
        // ASID 2 does not see ASID 1's entry — and may hold its own copy of
        // the same VPN with a different frame.
        tlb.set_current_asid(2);
        assert!(tlb.lookup(va4k(5)).is_none());
        let other = PageTranslation::new(Vpn::new(5), Pfn::new(7777), PageSize::Size4K);
        tlb.insert(other);
        assert_eq!(tlb.lookup(va4k(5)).unwrap().translation, other);
        // Switching back, ASID 1 still sees its original mapping: the
        // context switch cost no flush.
        tlb.set_current_asid(1);
        assert_eq!(tlb.lookup(va4k(5)).unwrap().translation, t4k(5));
        assert_eq!(tlb.occupancy(), 2);
        tlb.assert_invariants();
    }

    #[test]
    fn global_entries_visible_to_every_asid() {
        let mut tlb = SetAssocTlb::new("t", 64, 4, PageSize::Size4K);
        tlb.set_current_asid(1);
        tlb.insert_global(t4k(9));
        tlb.set_current_asid(2);
        assert!(
            tlb.lookup(va4k(9)).is_some(),
            "global entry survives switch"
        );
        // A global shootdown removes it; an ASID-targeted one does not.
        assert_eq!(tlb.invalidate_asid(1, va4k(9)), 0);
        assert!(tlb.lookup(va4k(9)).is_some());
        assert_eq!(tlb.invalidate(va4k(9)), 1);
        assert!(tlb.lookup(va4k(9)).is_none());
        tlb.assert_invariants();
    }

    #[test]
    fn global_insert_shadows_per_asid_copies() {
        let mut tlb = SetAssocTlb::new("t", 64, 4, PageSize::Size4K);
        tlb.set_current_asid(1);
        tlb.insert(t4k(3));
        tlb.set_current_asid(2);
        tlb.insert(PageTranslation::new(
            Vpn::new(3),
            Pfn::new(500),
            PageSize::Size4K,
        ));
        assert_eq!(tlb.occupancy(), 2);
        // A global insert of the same page replaces both per-ASID copies —
        // no lookup may ever match two slots.
        let global = PageTranslation::new(Vpn::new(3), Pfn::new(600), PageSize::Size4K);
        tlb.insert_global(global);
        assert_eq!(tlb.occupancy(), 1);
        for asid in [1u16, 2, 3] {
            tlb.set_current_asid(asid);
            assert_eq!(tlb.lookup(va4k(3)).unwrap().translation, global);
        }
        tlb.assert_invariants();
    }

    #[test]
    fn shootdown_of_va_present_under_two_asids() {
        let mut tlb = SetAssocTlb::new("t", 64, 4, PageSize::Size4K);
        tlb.set_current_asid(1);
        tlb.insert(t4k(5));
        tlb.set_current_asid(2);
        tlb.insert(PageTranslation::new(
            Vpn::new(5),
            Pfn::new(7777),
            PageSize::Size4K,
        ));
        // The ASID-targeted shootdown removes exactly one copy.
        assert_eq!(tlb.invalidate_asid(1, va4k(5)), 1);
        assert!(tlb.lookup(va4k(5)).is_some(), "ASID 2's copy survives");
        tlb.set_current_asid(1);
        assert!(tlb.lookup(va4k(5)).is_none());
        // The ASID-blind shootdown takes every remaining copy.
        assert_eq!(tlb.invalidate(va4k(5)), 1);
        assert_eq!(tlb.occupancy(), 0);
        tlb.assert_invariants();
    }

    #[test]
    fn flush_asid_spares_globals_and_other_asids() {
        let mut tlb = SetAssocTlb::new("t", 64, 4, PageSize::Size4K);
        tlb.set_current_asid(1);
        tlb.insert(t4k(1));
        tlb.insert(t4k(2));
        tlb.insert_global(t4k(3));
        tlb.set_current_asid(2);
        tlb.insert(t4k(4));
        assert_eq!(tlb.flush_asid(1), 2);
        assert!(tlb.lookup(va4k(3)).is_some(), "global survives");
        assert!(tlb.lookup(va4k(4)).is_some(), "other ASID survives");
        tlb.set_current_asid(1);
        assert!(tlb.lookup(va4k(1)).is_none());
        assert!(tlb.lookup(va4k(2)).is_none());
        tlb.assert_invariants();
    }

    #[test]
    fn invalidate_range_asid_is_targeted() {
        let mut tlb = SetAssocTlb::new("t", 64, 4, PageSize::Size4K);
        tlb.set_current_asid(1);
        for vpn in [3u64, 4, 5] {
            tlb.insert(t4k(vpn));
        }
        tlb.set_current_asid(2);
        tlb.insert(t4k(4));
        let range = VirtRange::new(va4k(4), 2 * 4096);
        assert_eq!(tlb.invalidate_range_asid(1, range), 2);
        assert!(tlb.lookup(va4k(4)).is_some(), "ASID 2's page 4 survives");
        tlb.set_current_asid(1);
        assert!(tlb.lookup(va4k(3)).is_some());
        assert!(tlb.lookup(va4k(4)).is_none());
        assert!(tlb.lookup(va4k(5)).is_none());
        tlb.assert_invariants();
    }

    #[test]
    fn default_asid_preserves_legacy_behaviour() {
        // With no ASID calls at all, the structure behaves exactly like the
        // pre-ASID version: everything lives under ASID 0, non-global.
        let mut tlb = SetAssocTlb::new("t", 64, 4, PageSize::Size4K);
        assert_eq!(tlb.current_asid(), 0);
        tlb.insert(t4k(5));
        assert!(tlb.lookup(va4k(5)).is_some());
        assert_eq!(tlb.flush_asid(0), 1);
        assert_eq!(tlb.occupancy(), 0);
    }

    #[test]
    #[should_panic(expected = "ASID exceeds")]
    fn oversized_asid_rejected() {
        let mut tlb = SetAssocTlb::new("t", 64, 4, PageSize::Size4K);
        tlb.set_current_asid(ASID_GLOBAL);
    }
}
