//! Seeded sweeps: the TLB structures against an oracle LRU model.
//!
//! The oracle is a per-set `Vec` kept in MRU→LRU order with the same
//! capacity policy; every hit/miss decision, reported rank, and eviction of
//! the real structures must agree with it across randomized operation
//! sequences (fixed seed, deterministic), including way resizing.

use eeat_tlb::{FullyAssocTlb, PageTranslation, RangeTlb, SetAssocTlb};
use eeat_types::rng::{RngExt, SeedableRng, SmallRng};
use eeat_types::{PageSize, Pfn, PhysAddr, RangeTranslation, VirtAddr, VirtRange, Vpn};

const CASES: u32 = 64;

fn rng(salt: u64) -> SmallRng {
    SmallRng::seed_from_u64(0x71b5_ca5e ^ salt)
}

/// An oracle for one TLB set: entries in MRU→LRU order.
#[derive(Default, Clone)]
struct OracleSet {
    order: Vec<u64>, // tags, MRU first
}

impl OracleSet {
    /// Returns the pre-promotion rank on hit, and promotes.
    fn lookup(&mut self, tag: u64) -> Option<usize> {
        let pos = self.order.iter().position(|&t| t == tag)?;
        let t = self.order.remove(pos);
        self.order.insert(0, t);
        Some(pos)
    }

    fn insert(&mut self, tag: u64, capacity: usize) {
        if let Some(pos) = self.order.iter().position(|&t| t == tag) {
            self.order.remove(pos);
        }
        self.order.insert(0, tag);
        self.order.truncate(capacity);
    }

    fn resize(&mut self, capacity: usize) {
        self.order.truncate(capacity);
    }
}

#[derive(Clone, Debug)]
enum Op {
    Lookup(u64),
    Insert(u64),
    Resize(usize),
}

fn ops(rng: &mut SmallRng, max_vpn: u64) -> Vec<Op> {
    let n = rng.random_range(1..200usize);
    (0..n)
        .map(|_| match rng.random_range(0..3usize) {
            0 => Op::Lookup(rng.random_range(0..max_vpn)),
            1 => Op::Insert(rng.random_range(0..max_vpn)),
            _ => Op::Resize(1 << rng.random_range(0..3usize)),
        })
        .collect()
}

#[test]
fn set_assoc_matches_oracle() {
    let mut rng = rng(1);
    for _ in 0..CASES {
        let ops = ops(&mut rng, 256);
        let sets = 16usize;
        let ways = 4usize;
        let mut tlb = SetAssocTlb::new("t", sets * ways, ways, PageSize::Size4K);
        let mut oracle: Vec<OracleSet> = vec![OracleSet::default(); sets];
        let mut active = ways;

        for op in ops {
            match op {
                Op::Lookup(vpn) => {
                    let set = (vpn as usize) % sets;
                    let got = tlb.lookup(Vpn::new(vpn).base_addr());
                    let want = oracle[set].lookup(vpn);
                    match (got, want) {
                        (Some(hit), Some(rank)) => assert_eq!(hit.rank as usize, rank),
                        (None, None) => {}
                        (g, w) => panic!("hit mismatch: got {:?}, want {:?}", g.is_some(), w),
                    }
                }
                Op::Insert(vpn) => {
                    let set = (vpn as usize) % sets;
                    tlb.insert(PageTranslation::new(
                        Vpn::new(vpn),
                        Pfn::new(vpn + 10_000),
                        PageSize::Size4K,
                    ));
                    oracle[set].insert(vpn, active);
                }
                Op::Resize(w) => {
                    tlb.set_active_ways(w);
                    if w < active {
                        for set in oracle.iter_mut() {
                            set.resize(w);
                        }
                    }
                    active = w;
                }
            }
            tlb.assert_invariants();
        }

        // Final contents agree.
        for (set_idx, set) in oracle.iter().enumerate() {
            for &vpn in &set.order {
                assert!(
                    tlb.probe(Vpn::new(vpn).base_addr(), PageSize::Size4K)
                        .is_some(),
                    "oracle holds vpn {vpn} in set {set_idx} but TLB lost it"
                );
            }
        }
        assert_eq!(
            tlb.occupancy(),
            oracle.iter().map(|s| s.order.len()).sum::<usize>()
        );
    }
}

#[test]
fn fully_assoc_matches_oracle() {
    let mut rng = rng(2);
    for _ in 0..CASES {
        let ops = ops(&mut rng, 64);
        let capacity = 4usize;
        let mut tlb = FullyAssocTlb::new("t", capacity, PageSize::Size4K);
        let mut oracle = OracleSet::default();
        let mut active = capacity;

        for op in ops {
            match op {
                Op::Lookup(vpn) => {
                    let got = tlb.lookup(Vpn::new(vpn).base_addr());
                    let want = oracle.lookup(vpn);
                    assert_eq!(got.map(|h| h.rank as usize), want);
                }
                Op::Insert(vpn) => {
                    tlb.insert(PageTranslation::new(
                        Vpn::new(vpn),
                        Pfn::new(vpn + 10_000),
                        PageSize::Size4K,
                    ));
                    oracle.insert(vpn, active);
                }
                Op::Resize(n) => {
                    tlb.set_active_entries(n);
                    if n < active {
                        oracle.resize(n);
                    }
                    active = n;
                }
            }
            tlb.assert_invariants();
        }
        assert_eq!(tlb.occupancy(), oracle.order.len());
    }
}

#[test]
fn stats_balance() {
    // hits + misses == lookups, and a miss followed by a fill always hits.
    let mut rng = rng(3);
    for _ in 0..CASES {
        let n = rng.random_range(1..300usize);
        let lookups: Vec<u64> = (0..n).map(|_| rng.random_range(0..64u64)).collect();
        let mut tlb = SetAssocTlb::new("t", 64, 4, PageSize::Size4K);
        for &vpn in &lookups {
            let va = Vpn::new(vpn).base_addr();
            if tlb.lookup(va).is_none() {
                tlb.insert(PageTranslation::new(
                    Vpn::new(vpn),
                    Pfn::new(vpn + 1),
                    PageSize::Size4K,
                ));
                assert!(tlb.probe(va, PageSize::Size4K).is_some());
            }
        }
        assert_eq!(tlb.stats().lookups(), lookups.len() as u64);
        assert_eq!(
            tlb.stats().hits() + tlb.stats().misses(),
            tlb.stats().lookups()
        );
        assert_eq!(tlb.stats().fills(), tlb.stats().misses());
    }
}

#[test]
fn rank_semantics_vs_smaller_tlb() {
    // The defining property behind Lite's lru-distance-counters: a hit
    // with rank r in a w-way TLB occurs iff the same lookup hits in a
    // TLB with w' > r ways (same sets) under an identical trace.
    // Simulate 4-way and 2-way side by side; every 4-way hit with
    // rank < 2 must hit in the 2-way, and every rank >= 2 hit must miss.
    let mut rng = rng(4);
    for _ in 0..CASES {
        let n = rng.random_range(50..400usize);
        let trace: Vec<u64> = (0..n).map(|_| rng.random_range(0..128u64)).collect();
        let mut big = SetAssocTlb::new("big", 64, 4, PageSize::Size4K);
        let mut small = SetAssocTlb::new("small", 32, 2, PageSize::Size4K);
        for &vpn in &trace {
            let va = Vpn::new(vpn).base_addr();
            let big_hit = big.lookup(va);
            let small_hit = small.lookup(va);
            match big_hit {
                Some(hit) if hit.rank < 2 => {
                    assert!(small_hit.is_some(), "rank {} should hit 2-way", hit.rank)
                }
                Some(hit) => {
                    assert!(small_hit.is_none(), "rank {} should miss 2-way", hit.rank)
                }
                None => assert!(small_hit.is_none(), "big miss implies small miss"),
            }
            let entry = PageTranslation::new(Vpn::new(vpn), Pfn::new(vpn + 1), PageSize::Size4K);
            if big_hit.is_none() {
                big.insert(entry);
            }
            if small_hit.is_none() {
                small.insert(entry);
            }
        }
    }
}

#[test]
fn range_tlb_matches_linear_scan() {
    let mut rng = rng(5);
    for _ in 0..CASES {
        let n_ranges = rng.random_range(1..20usize);
        let ranges: Vec<(u64, u64)> = (0..n_ranges)
            .map(|_| (rng.random_range(0..64u64), rng.random_range(1..8u64)))
            .collect();
        let n_probes = rng.random_range(1..50usize);
        let probes: Vec<u64> = (0..n_probes).map(|_| rng.random_range(0..72u64)).collect();

        // Build disjoint ranges on a 64 MiB grid so overlap never occurs.
        let mut tlb = RangeTlb::new("t", 8);
        let mut inserted: Vec<RangeTranslation> = Vec::new();
        for (i, &(slot, len)) in ranges.iter().enumerate() {
            let start = slot * (64 << 20); // 64 MiB grid, len <= 8 MiB
            let rt = RangeTranslation::new(
                VirtRange::new(VirtAddr::new(start), len << 20),
                PhysAddr::new((i as u64 + 1) << 32),
            );
            // Mirror the TLB capacity policy: dedupe + LRU truncate to 8.
            inserted.retain(|r| r.virt() != rt.virt());
            inserted.insert(0, rt);
            inserted.truncate(8);
            tlb.insert(rt);
        }
        for &p in &probes {
            let va = VirtAddr::new(p << 20);
            let got = tlb.lookup(va).is_some();
            let pos = inserted.iter().position(|r| r.virt().contains(va));
            assert_eq!(got, pos.is_some());
            if let Some(pos) = pos {
                let r = inserted.remove(pos);
                inserted.insert(0, r);
            }
        }
    }
}
