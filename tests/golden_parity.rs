//! Golden-fixture parity: bit-for-bit `RunResult` snapshots.
//!
//! Each canonical configuration runs a fixed workload/seed/budget and the
//! full `RunResult` — every stats counter, every per-structure energy
//! accumulator (as raw `f64` bit patterns), and the cycle split — is
//! compared against a committed fixture under `tests/fixtures/golden/`.
//! Any behavioural drift in the translation pipeline, however small,
//! changes at least one line.
//!
//! To regenerate after an *intentional* behaviour change:
//!
//! ```text
//! EEAT_BLESS=1 cargo test --test golden_parity
//! ```
//!
//! and commit the rewritten fixtures together with the change.

mod common;

use common::{dump, fixture_path};
use eeat_core::{Config, Simulator};
use eeat_workloads::Workload;

const INSTRUCTIONS: u64 = 1_000_000;
const SEED: u64 = 42;

/// The canonical runs: name → freshly configured simulator.
fn cases() -> Vec<(&'static str, Simulator)> {
    let sim = |config: Config| Simulator::from_workload(config, Workload::Mcf, SEED);
    let mut with_flush = sim(Config::tlb_lite());
    // A flush cadence co-prime-ish with the 100k Lite interval, so flushes
    // land mid-interval and the flush/epoch interaction is pinned too.
    with_flush.set_flush_interval(Some(230_000));
    vec![
        ("four_k", sim(Config::four_k())),
        ("thp", sim(Config::thp())),
        ("tlb_lite", sim(Config::tlb_lite())),
        ("rmm", sim(Config::rmm())),
        ("rmm_lite", sim(Config::rmm_lite())),
        ("tlb_pp", sim(Config::tlb_pp())),
        ("tlb_pred", sim(Config::tlb_pred())),
        ("fa_lite", sim(Config::fa_lite())),
        ("colt", sim(Config::colt())),
        ("tlb_lite_flush", with_flush),
    ]
}

#[test]
fn run_results_match_golden_fixtures() {
    let bless = std::env::var_os("EEAT_BLESS").is_some();
    let mut mismatches = Vec::new();
    for (name, mut sim) in cases() {
        let result = sim.run(INSTRUCTIONS);
        let got = dump(&result);
        let path = fixture_path(name);
        if bless {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &got).unwrap();
            continue;
        }
        let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing fixture {} ({e}); run `EEAT_BLESS=1 cargo test --test golden_parity`",
                path.display()
            )
        });
        if got != want {
            let diff: Vec<String> = want
                .lines()
                .zip(got.lines())
                .filter(|(w, g)| w != g)
                .map(|(w, g)| format!("  - {w}\n  + {g}"))
                .collect();
            mismatches.push(format!("[{name}] diverged:\n{}", diff.join("\n")));
        }
    }
    assert!(
        mismatches.is_empty(),
        "golden parity broken:\n{}",
        mismatches.join("\n")
    );
}

#[test]
fn golden_runs_are_reproducible_in_process() {
    // The fixture premise: two identical runs in the same process agree
    // bit-for-bit.
    for (name, mut sim) in cases() {
        let first = dump(&sim.run(INSTRUCTIONS));
        let (_, mut again) = cases().into_iter().find(|(n, _)| *n == name).unwrap();
        let second = dump(&again.run(INSTRUCTIONS));
        assert_eq!(first, second, "[{name}] not deterministic");
    }
}
