//! Batched-loop equivalence: `run_block` ≡ `run_per_access`, bit for bit.
//!
//! The block-driven hot loop (PR 4) must be a pure throughput optimization:
//! for every configuration, every block size, and every run-flavour mix,
//! the `RunResult` — stats counters, per-structure energy as raw IEEE-754
//! bit patterns, and the cycle split — must equal the unbatched reference
//! implementation exactly. The profiled and timeline flavours ride the same
//! generic pipeline and are held to the same standard.

use eeat_core::{Config, RunResult, Simulator, DEFAULT_BLOCK};
use eeat_energy::Structure;
use eeat_workloads::Workload;

const INSTRUCTIONS: u64 = 300_000;
const SEED: u64 = 42;

/// Block sizes worth pinning: degenerate (1), odd (3), and two powers of
/// two including the default.
const BLOCKS: [usize; 4] = [1, 3, 256, DEFAULT_BLOCK];

/// The canonical configurations of the golden-parity suite.
fn cases() -> Vec<(&'static str, Simulator)> {
    let sim = |config: Config| Simulator::from_workload(config, Workload::Mcf, SEED);
    let mut with_flush = sim(Config::tlb_lite());
    with_flush.set_flush_interval(Some(230_000));
    vec![
        ("four_k", sim(Config::four_k())),
        ("thp", sim(Config::thp())),
        ("tlb_lite", sim(Config::tlb_lite())),
        ("rmm", sim(Config::rmm())),
        ("rmm_lite", sim(Config::rmm_lite())),
        ("tlb_pp", sim(Config::tlb_pp())),
        ("tlb_pred", sim(Config::tlb_pred())),
        ("fa_lite", sim(Config::fa_lite())),
        ("tlb_lite_flush", with_flush),
    ]
}

/// Rebuilds the named case from scratch (fresh simulator, same seed).
fn rebuild(name: &str) -> Simulator {
    cases()
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, sim)| sim)
        .expect("known case name")
}

/// Asserts two results identical: integer counters by equality, energy by
/// raw bit pattern (stricter than `f64` equality: rules out `-0.0`/`0.0`
/// and NaN aliasing).
fn assert_identical(label: &str, got: &RunResult, want: &RunResult) {
    assert_eq!(got.stats, want.stats, "[{label}] stats diverged");
    assert_eq!(got.cycles, want.cycles, "[{label}] cycles diverged");
    for structure in Structure::ALL {
        assert_eq!(
            got.energy.pj(structure).to_bits(),
            want.energy.pj(structure).to_bits(),
            "[{label}] energy({structure}) diverged: {} vs {}",
            got.energy.pj(structure),
            want.energy.pj(structure),
        );
    }
}

#[test]
fn run_block_matches_per_access_for_all_cases_and_block_sizes() {
    for (name, mut reference) in cases() {
        let want = reference.run_per_access(INSTRUCTIONS);
        for block in BLOCKS {
            let got = rebuild(name).run_block(INSTRUCTIONS, block);
            assert_identical(&format!("{name} block={block}"), &got, &want);
        }
    }
}

#[test]
fn profiled_run_matches_per_access() {
    for (name, mut reference) in cases() {
        let want = reference.run_per_access(INSTRUCTIONS);
        let (got, profile) = rebuild(name).run_block_profiled(INSTRUCTIONS, DEFAULT_BLOCK);
        assert_identical(&format!("{name} profiled"), &got, &want);
        // A run this size spends measurable time in the L1 stage.
        assert!(profile.seconds(eeat_core::Stage::L1Probe) > 0.0);
        assert!(profile.total_seconds() >= profile.seconds(eeat_core::Stage::L1Probe));
    }
}

#[test]
fn timeline_run_matches_per_access() {
    // The timeline observer rides the generic observer slot; it must not
    // perturb the simulation.
    for (name, mut reference) in cases() {
        let want = reference.run_per_access(INSTRUCTIONS);
        let (got, timeline) = rebuild(name).run_with_timeline(INSTRUCTIONS, 50_000);
        assert_identical(&format!("{name} timeline"), &got, &want);
        assert!(!timeline.is_empty(), "[{name}] timeline sampled");
    }
}

#[test]
fn mixed_flavours_drain_block_leftovers_in_order() {
    // Alternating run flavours on one simulator must consume the exact
    // same access stream as either flavour alone: buffered leftovers are
    // drained before the source is consulted again.
    for (name, mut reference) in cases() {
        let _ = reference.run_per_access(INSTRUCTIONS);
        let want = reference.run_per_access(INSTRUCTIONS);

        let mut mixed = rebuild(name);
        // An odd block size guarantees leftovers at the handoff.
        let _ = mixed.run_block(INSTRUCTIONS, 777);
        let got = mixed.run_per_access(INSTRUCTIONS);
        assert_identical(&format!("{name} mixed"), &got, &want);
    }
}

#[test]
fn equivalence_survives_huge_page_demotion_and_flushes() {
    // Fuzz-seeded sweep over run/demote/run schedules: the mid-run
    // break_huge_pages shootdown and context-switch flushes must commute
    // with batching exactly.
    type ConfigCtor = fn() -> Config;
    let configs: [(&str, ConfigCtor); 3] = [
        ("thp", Config::thp),
        ("rmm_lite", Config::rmm_lite),
        ("tlb_pp", Config::tlb_pp),
    ];
    for (cname, config) in configs {
        for seed in [1, 7, 99] {
            let schedule = |mut sim: Simulator, batched: bool| {
                sim.set_flush_interval(Some(90_000 + seed * 1_000));
                let run = |sim: &mut Simulator, n: u64| {
                    if batched {
                        sim.run_block(n, 64)
                    } else {
                        sim.run_per_access(n)
                    }
                };
                let _ = run(&mut sim, 120_000);
                let demoted = sim.break_huge_pages(8 + seed);
                let result = run(&mut sim, 120_000);
                (demoted, result)
            };
            let workload = Workload::Mcf;
            let (d1, want) = schedule(Simulator::from_workload(config(), workload, seed), false);
            let (d2, got) = schedule(Simulator::from_workload(config(), workload, seed), true);
            assert_eq!(d1, d2, "[{cname} seed={seed}] demotion count diverged");
            assert_identical(&format!("{cname} seed={seed} demote"), &got, &want);
        }
    }
}
