//! Integration test: the simulator's energy accounting reproduces the
//! paper's Table 3 equations when recomputed independently from structure
//! event counters.

use eeat::core::{Config, Simulator};
use eeat::energy::{EnergyModel, Structure};
use eeat::os::RANGE_TABLE_WALK_REFS;
use eeat::workloads::Workload;

#[test]
fn energy_matches_table3_recomputation_fixed_geometry() {
    // Without Lite, all structure geometries are fixed, so
    // E = A * E_read + M * E_write can be recomputed post-hoc from each
    // structure's counters and must equal the simulator's accounting.
    let mut sim = Simulator::from_workload(Config::rmm(), Workload::Omnetpp, 21);
    let r = sim.run(400_000);
    let m = EnergyModel::sandy_bridge();
    let h = sim.hierarchy();

    let l1_4k = h.l1_4k().unwrap().stats();
    let expect_4k =
        l1_4k.lookups() as f64 * m.l1_4k(4).read_pj + l1_4k.fills() as f64 * m.l1_4k(4).write_pj;
    assert!((r.energy.pj(Structure::L1Page4K) - expect_4k).abs() < 1e-6);

    let l1_2m = h.l1_2m().unwrap().stats();
    let expect_2m =
        l1_2m.lookups() as f64 * m.l1_2m(4).read_pj + l1_2m.fills() as f64 * m.l1_2m(4).write_pj;
    assert!((r.energy.pj(Structure::L1Page2M) - expect_2m).abs() < 1e-6);

    let l2 = h.l2_page().stats();
    let expect_l2 =
        l2.lookups() as f64 * m.l2_page().read_pj + l2.fills() as f64 * m.l2_page().write_pj;
    assert!((r.energy.pj(Structure::L2Page) - expect_l2).abs() < 1e-6);

    let l2r = h.l2_range().unwrap().stats();
    let expect_l2r =
        l2r.lookups() as f64 * m.l2_range().read_pj + l2r.fills() as f64 * m.l2_range().write_pj;
    assert!((r.energy.pj(Structure::L2Range) - expect_l2r).abs() < 1e-6);

    let expect_walks = r.stats.walk_memory_refs as f64 * m.walk_ref_pj();
    assert!((r.energy.pj(Structure::PageWalk) - expect_walks).abs() < 1e-6);

    let expect_range_walks =
        (r.stats.range_table_walks * u64::from(RANGE_TABLE_WALK_REFS)) as f64 * m.walk_ref_pj();
    assert!((r.energy.pj(Structure::RangeWalk) - expect_range_walks).abs() < 1e-6);
}

#[test]
fn lite_energy_is_bounded_by_fixed_extremes() {
    // With Lite resizing, the L1-4KB energy must lie between the all-1-way
    // and all-4-way costs for the same lookup/fill counts.
    let mut sim = Simulator::from_workload(Config::tlb_lite(), Workload::CactusADM, 21);
    let r = sim.run(2_000_000);
    let m = EnergyModel::sandy_bridge();
    let s = sim.hierarchy().l1_4k().unwrap().stats();
    let lo = s.lookups() as f64 * m.l1_4k(1).read_pj;
    let hi = s.lookups() as f64 * m.l1_4k(4).read_pj + s.fills() as f64 * m.l1_4k(4).write_pj;
    let got = r.energy.pj(Structure::L1Page4K);
    assert!(got >= lo, "L1-4KB energy {got} below 1-way floor {lo}");
    assert!(
        got <= hi + 1e-6,
        "L1-4KB energy {got} above 4-way ceiling {hi}"
    );
    // And cactusADM actually downsizes, so it sits strictly below the ceiling.
    assert!(
        got < 0.8 * hi,
        "Lite should have saved energy: {got} vs {hi}"
    );
}

#[test]
fn walk_locality_only_scales_walk_energy() {
    // The Figure 3 knob must leave all non-walk components untouched.
    let run_with = |ratio: f64| {
        let mut sim = Simulator::from_workload(Config::four_k(), Workload::Gobmk, 3);
        sim.set_energy_model(EnergyModel::sandy_bridge().with_walk_l1_hit_ratio(ratio));
        sim.run(400_000)
    };
    let full = run_with(1.0);
    let none = run_with(0.0);
    assert_eq!(
        full.stats, none.stats,
        "behaviour must not depend on the energy model"
    );
    let full_nonwalk = full.energy.total_pj() - full.energy.pj(Structure::PageWalk);
    let none_nonwalk = none.energy.total_pj() - none.energy.pj(Structure::PageWalk);
    assert!((full_nonwalk - none_nonwalk).abs() < 1e-6);
    assert!(
        none.energy.pj(Structure::PageWalk) > full.energy.pj(Structure::PageWalk),
        "L2-cache walk references cost more"
    );
}
