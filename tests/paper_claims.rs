//! Integration tests: the paper's qualitative claims hold end-to-end.
//!
//! These run the real simulator across crates at a reduced instruction
//! budget; they assert the *shape* of every headline result (who wins, in
//! which direction), not absolute numbers.

use eeat::core::{Config, Simulator};
use eeat::workloads::Workload;

const INSTR: u64 = 1_000_000;

fn run(config: Config, workload: Workload) -> eeat::core::RunResult {
    let mut sim = Simulator::from_workload(config, workload, 42);
    sim.run(INSTR)
}

/// Steady-state energy per kilo-instruction: 2 M instructions of warmup
/// (structure fills, Lite convergence), then 2 M measured by differencing
/// the cumulative results.
fn steady_energy(config: Config, workload: Workload) -> f64 {
    let mut sim = Simulator::from_workload(config, workload, 42);
    let warm = sim.run(2_000_000);
    let done = sim.run(2_000_000);
    (done.energy.total_pj() - warm.energy.total_pj())
        / ((done.stats.instructions - warm.stats.instructions) as f64 / 1000.0)
}

#[test]
fn thp_cuts_miss_cycles_for_huge_page_friendly_workloads() {
    // §3.3: THP reduces TLB-miss cycles dramatically where the footprint is
    // huge-page friendly (astar's map, mcf's arc arrays).
    for workload in [Workload::Astar, Workload::Mcf] {
        let four_k = run(Config::four_k(), workload);
        let thp = run(Config::thp(), workload);
        assert!(
            (thp.cycles.total() as f64) < 0.5 * four_k.cycles.total() as f64,
            "{workload}: THP {} vs 4KB {}",
            thp.cycles.total(),
            four_k.cycles.total()
        );
    }
}

#[test]
fn thp_increases_energy_for_fragmented_workloads() {
    // §3.3: canneal's fragmented heap defeats THP, so the extra L1-2MB
    // lookups raise dynamic energy (paper: +43%).
    let four_k = run(Config::four_k(), Workload::Canneal);
    let thp = run(Config::thp(), Workload::Canneal);
    assert!(
        thp.energy.total_pj() > 1.05 * four_k.energy.total_pj(),
        "canneal THP {} vs 4KB {}",
        thp.energy.total_pj(),
        four_k.energy.total_pj()
    );
}

#[test]
fn tlb_lite_saves_energy_with_negligible_cycle_cost() {
    // §6.1: TLB_Lite reduces dynamic energy versus THP while adding only a
    // few percent of TLB-miss cycles.
    let mut saved = 0;
    for workload in [Workload::CactusADM, Workload::GemsFDTD, Workload::Zeusmp] {
        let thp = steady_energy(Config::thp(), workload);
        let lite = steady_energy(Config::tlb_lite(), workload);
        if lite < 0.95 * thp {
            saved += 1;
        }
        let thp_cycles = run(Config::thp(), workload).cycles.total();
        let lite_cycles = run(Config::tlb_lite(), workload).cycles.total();
        assert!(
            (lite_cycles as f64) < 1.25 * thp_cycles as f64 + 1000.0,
            "{workload}: Lite cycle overhead too high ({lite_cycles} vs {thp_cycles})"
        );
    }
    assert!(saved >= 2, "TLB_Lite should save energy on most workloads");
}

#[test]
fn rmm_eliminates_l2_misses() {
    // §3.4 / §6.1: the 32-entry L2-range TLB reduces page walks to near
    // zero under perfect eager paging.
    for workload in [Workload::Mcf, Workload::CactusADM, Workload::Canneal] {
        let rmm = run(Config::rmm(), workload);
        assert!(
            rmm.stats.l2_mpki() < 0.1,
            "{workload}: RMM L2 MPKI {}",
            rmm.stats.l2_mpki()
        );
    }
}

#[test]
fn rmm_lite_wins_overall() {
    // §6.1: RMM_Lite reduces dynamic energy the most among realizable
    // configurations and nearly eliminates L1-miss overhead.
    for workload in [Workload::Mcf, Workload::CactusADM, Workload::GemsFDTD] {
        let thp = steady_energy(Config::thp(), workload);
        let rmm = steady_energy(Config::rmm(), workload);
        let rmm_lite = steady_energy(Config::rmm_lite(), workload);

        assert!(
            rmm_lite < 0.5 * thp,
            "{workload}: RMM_Lite energy {rmm_lite} vs THP {thp}"
        );
        assert!(rmm_lite < rmm, "{workload}: RMM_Lite must beat RMM");
        let rmm_run = run(Config::rmm(), workload);
        let rmml_run = run(Config::rmm_lite(), workload);
        assert!(
            rmml_run.stats.l1_misses < rmm_run.stats.l1_misses,
            "{workload}: the L1-range TLB removes L1 misses on top of RMM"
        );
    }
}

#[test]
fn rmm_lite_downsizes_more_aggressively_than_tlb_lite() {
    // §4.3: the L1-range TLB's hit ratio lets Lite disable more ways in the
    // L1-4KB TLB than under TLB_Lite.
    let workload = Workload::CactusADM;
    let mut lite_sim = Simulator::from_workload(Config::tlb_lite(), workload, 42);
    lite_sim.run(3 * INSTR);
    let mut rmml_sim = Simulator::from_workload(Config::rmm_lite(), workload, 42);
    rmml_sim.run(3 * INSTR);

    let lite_ways = lite_sim.hierarchy().l1_4k().unwrap().active_ways();
    let rmml_ways = rmml_sim.hierarchy().l1_4k().unwrap().active_ways();
    assert!(
        rmml_ways <= lite_ways,
        "RMM_Lite at {rmml_ways} ways vs TLB_Lite at {lite_ways}"
    );
    assert!(
        rmml_ways == 1,
        "cactusADM runs 1-way under RMM_Lite (Table 5)"
    );
}

#[test]
fn tlb_pp_sits_between_thp_and_rmm_lite() {
    // §6.1: perfect TLB_Pred saves the separate-structure energy but cannot
    // exploit range translations.
    let workload = Workload::GemsFDTD;
    let thp = steady_energy(Config::thp(), workload);
    let pp = steady_energy(Config::tlb_pp(), workload);
    let rmm_lite = steady_energy(Config::rmm_lite(), workload);
    assert!(pp < thp, "TLB_PP {pp} vs THP {thp}");
    assert!(rmm_lite < pp, "RMM_Lite {rmm_lite} vs TLB_PP {pp}");
}

#[test]
fn range_tlb_hit_shares_follow_allocation_granularity() {
    // Table 5: workloads whose footprint sits in few allocation requests
    // hit the L1-range TLB almost always (zeusmp); many-arena workloads
    // split their hits (omnetpp).
    let zeusmp = run(Config::rmm_lite(), Workload::Zeusmp);
    let (_, _, _, zeus_range) = zeusmp.stats.l1_hit_shares();
    assert!(zeus_range > 0.9, "zeusmp range share {zeus_range}");

    let omnetpp = run(Config::rmm_lite(), Workload::Omnetpp);
    let (omnet_4k, _, _, omnet_range) = omnetpp.stats.l1_hit_shares();
    assert!(
        omnet_range < 0.75 && omnet_4k > 0.25,
        "omnetpp splits hits: 4K {omnet_4k}, range {omnet_range}"
    );
}
