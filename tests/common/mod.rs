//! Shared helpers for the golden-fixture parity suites: the stable
//! `RunResult` dump format and fixture paths. Kept in `tests/common/` so
//! Cargo does not treat it as a test target of its own.

use std::fmt::Write as _;
use std::path::PathBuf;

use eeat_core::RunResult;
use eeat_energy::Structure;

/// Path of a committed golden fixture.
pub fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/golden")
        .join(format!("{name}.txt"))
}

/// Renders a `RunResult` as stable `key = value` lines; floats are stored
/// as their IEEE-754 bit patterns so equality is exact, with a readable
/// decimal echo in a trailing comment.
pub fn dump(r: &RunResult) -> String {
    let mut out = String::new();
    let s = &r.stats;
    let mut kv = |k: &str, v: u64| writeln!(out, "{k} = {v}").unwrap();
    kv("stats.instructions", s.instructions);
    kv("stats.accesses", s.accesses);
    kv("stats.l1_misses", s.l1_misses);
    kv("stats.l2_misses", s.l2_misses);
    kv("stats.l1_hits_4k", s.l1_hits_4k);
    kv("stats.l1_hits_2m", s.l1_hits_2m);
    kv("stats.l1_hits_1g", s.l1_hits_1g);
    kv("stats.l1_hits_range", s.l1_hits_range);
    kv("stats.l2_hits_page", s.l2_hits_page);
    kv("stats.l2_hits_range", s.l2_hits_range);
    kv("stats.walk_memory_refs", s.walk_memory_refs);
    kv("stats.range_table_walks", s.range_table_walks);
    for (i, &n) in s.l1_4k_lookups_by_ways.iter().enumerate() {
        kv(&format!("stats.l1_4k_lookups_by_ways[{i}]"), n);
    }
    for (i, &n) in s.l1_2m_lookups_by_ways.iter().enumerate() {
        kv(&format!("stats.l1_2m_lookups_by_ways[{i}]"), n);
    }
    for (i, &n) in s.l1_fa_lookups_by_entries.iter().enumerate() {
        kv(&format!("stats.l1_fa_lookups_by_entries[{i}]"), n);
    }
    kv("stats.predictor_second_probes", s.predictor_second_probes);
    kv("stats.lite_intervals", s.lite_intervals);
    kv("stats.lite_reactivations", s.lite_reactivations);
    for structure in Structure::ALL {
        let pj = r.energy.pj(structure);
        // L1-CoLT and the virtualized-mode structures postdate the
        // original fixtures; omit their lines when the structure is absent
        // (charged nothing) so the six paper organizations' fixtures stay
        // byte-identical.
        let postdates_fixtures = matches!(
            structure,
            Structure::L1Colt
                | Structure::HostMmuPde
                | Structure::HostMmuPdpte
                | Structure::HostMmuPml4
                | Structure::NestedTlb
                | Structure::HostWalk
        );
        if postdates_fixtures && pj == 0.0 {
            continue;
        }
        writeln!(
            out,
            "energy.{} = {:016x}  # {pj:.6} pJ",
            structure.label(),
            pj.to_bits()
        )
        .unwrap();
    }
    writeln!(out, "cycles.l1_miss_cycles = {}", r.cycles.l1_miss_cycles).unwrap();
    writeln!(out, "cycles.l2_miss_cycles = {}", r.cycles.l2_miss_cycles).unwrap();
    out
}
