//! Integration tests: accounting invariants that must hold for every
//! configuration and workload combination.

use eeat::core::{Config, Simulator};
use eeat::energy::Structure;
use eeat::workloads::Workload;

const INSTR: u64 = 400_000;

fn check_invariants(config: Config, workload: Workload) {
    let name = config.name;
    let mut sim = Simulator::from_workload(config, workload, 11);
    let r = sim.run(INSTR);

    // Event conservation.
    assert_eq!(
        r.stats.l1_hits() + r.stats.l1_misses,
        r.stats.accesses,
        "{name}/{workload}: every access hits or misses L1"
    );
    assert_eq!(
        r.stats.l2_hits_page + r.stats.l2_hits_range + r.stats.l2_misses,
        r.stats.l1_misses,
        "{name}/{workload}: every L1 miss resolves at L2 or walks"
    );

    // Cycle model (Table 3).
    assert_eq!(r.cycles.l1_miss_cycles, 7 * r.stats.l1_misses);
    assert_eq!(r.cycles.l2_miss_cycles, 50 * r.stats.l2_misses);

    // Walk bounds: 1-4 refs per walk.
    if r.stats.l2_misses > 0 {
        let avg = r.stats.avg_walk_refs();
        assert!(
            (1.0..=4.0).contains(&avg),
            "{name}/{workload}: avg walk refs {avg}"
        );
    } else {
        assert_eq!(r.stats.walk_memory_refs, 0);
    }

    // Energy sanity: total positive, and absent structures contribute zero.
    assert!(r.energy.total_pj() > 0.0);
    let hierarchy = sim.hierarchy();
    if hierarchy.l1_2m().is_none() {
        assert_eq!(r.energy.pj(Structure::L1Page2M), 0.0, "{name}/{workload}");
    }
    if hierarchy.l1_range().is_none() {
        assert_eq!(r.energy.pj(Structure::L1Range), 0.0, "{name}/{workload}");
    }
    if hierarchy.l2_range().is_none() {
        assert_eq!(r.energy.pj(Structure::L2Range), 0.0, "{name}/{workload}");
        assert_eq!(r.energy.pj(Structure::RangeWalk), 0.0, "{name}/{workload}");
        assert_eq!(r.stats.range_table_walks, 0, "{name}/{workload}");
    }

    // MMU caches are only touched by walks.
    if r.stats.l2_misses == 0 {
        assert_eq!(r.energy.pj(Structure::MmuPde), 0.0, "{name}/{workload}");
    }

    // Lite structures stay internally consistent.
    sim.hierarchy().l1_4k().unwrap().assert_invariants();
    if let Some(t) = sim.hierarchy().l1_2m() {
        t.assert_invariants();
    }
}

#[test]
fn invariants_hold_across_the_matrix() {
    // A fast but broad slice of the (workload, config) matrix.
    for workload in [Workload::Omnetpp, Workload::Gromacs, Workload::Swaptions] {
        for config in Config::all_six() {
            check_invariants(config, workload);
        }
    }
}

#[test]
fn same_trace_different_configs() {
    // Every config sees the identical access stream for a (workload, seed):
    // access counts and instruction counts agree across configs.
    let mut counts = Vec::new();
    for config in Config::all_six() {
        let mut sim = Simulator::from_workload(config, Workload::Povray, 5);
        let r = sim.run(INSTR);
        counts.push((r.stats.accesses, r.stats.instructions));
    }
    assert!(
        counts.windows(2).all(|w| w[0] == w[1]),
        "configs disagree on the trace: {counts:?}"
    );
}

#[test]
fn determinism_end_to_end() {
    let run = || {
        let mut sim = Simulator::from_workload(Config::rmm_lite(), Workload::Hmmer, 99);
        let r = sim.run(INSTR);
        (
            r.stats,
            r.cycles,
            r.energy.total_pj().to_bits(),
            sim.hierarchy().l1_4k().unwrap().active_ways(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn seeds_change_traces_but_not_shapes() {
    let mut totals = Vec::new();
    for seed in [1, 2, 3] {
        let mut sim = Simulator::from_workload(Config::thp(), Workload::Povray, seed);
        let r = sim.run(INSTR);
        totals.push(r.energy.total_pj());
    }
    // Different seeds: not bit-identical...
    assert!(totals.windows(2).any(|w| w[0] != w[1]));
    // ...but statistically stable (within 20% of each other).
    let max = totals.iter().cloned().fold(f64::MIN, f64::max);
    let min = totals.iter().cloned().fold(f64::MAX, f64::min);
    assert!(max / min < 1.2, "seed variance too high: {totals:?}");
}
