//! Multi-core bit-parity: a `MultiCoreSim` with one core and one tenant is
//! the plain single-core simulator, byte for byte.
//!
//! The multi-core driver threads every run through the sharded frame
//! allocator, the ASID-tagged structures (under ASID 0), the round-robin
//! scheduler (a no-op at `tenants == cores`), and the IPI bus (empty) — so
//! reproducing the committed golden fixtures here pins the entire
//! degenerate path, for *any* quantum (energy settles once per `run`, not
//! per quantum).

mod common;

use common::{dump, fixture_path};
use eeat_core::{Config, MultiCoreParams, MultiCoreSim};
use eeat_workloads::Workload;

const INSTRUCTIONS: u64 = 1_000_000;
const SEED: u64 = 42;

/// The nine golden organizations (the tenth fixture, `tlb_lite_flush`,
/// exercises the ASID-less flush interval the multi-core mode replaces).
fn orgs() -> Vec<(&'static str, Config)> {
    vec![
        ("four_k", Config::four_k()),
        ("thp", Config::thp()),
        ("tlb_lite", Config::tlb_lite()),
        ("rmm", Config::rmm()),
        ("rmm_lite", Config::rmm_lite()),
        ("tlb_pp", Config::tlb_pp()),
        ("tlb_pred", Config::tlb_pred()),
        ("fa_lite", Config::fa_lite()),
        ("colt", Config::colt()),
    ]
}

#[test]
fn single_core_single_tenant_matches_golden_fixtures() {
    // A quantum that divides 1M unevenly, so the run spans several
    // quantum-sized `run_inner` slices plus a ragged tail.
    let params = MultiCoreParams {
        cores: 1,
        tenants: 1,
        quantum: 137_000,
        demotions_per_quantum: 0,
    };
    let mut mismatches = Vec::new();
    for (name, config) in orgs() {
        let mut mc = MultiCoreSim::from_workload(config, Workload::Mcf, params, SEED);
        let result = mc.run(INSTRUCTIONS);
        let core = &result.per_core[0];
        // The degenerate topology produces zero coherence traffic.
        assert_eq!(core.ipi.asid_switches, 0, "[{name}] spurious ASID switch");
        assert_eq!(core.ipi.ipis_sent, 0, "[{name}] spurious IPI");
        assert_eq!(core.run.stats.asid_switches, 0, "[{name}]");
        assert_eq!(core.run.stats.ipis_received, 0, "[{name}]");
        let got = dump(&core.run);
        let path = fixture_path(name);
        let want = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
        if got != want {
            let diff: Vec<String> = want
                .lines()
                .zip(got.lines())
                .filter(|(w, g)| w != g)
                .map(|(w, g)| format!("  - {w}\n  + {g}"))
                .collect();
            mismatches.push(format!("[{name}] diverged:\n{}", diff.join("\n")));
        }
    }
    assert!(
        mismatches.is_empty(),
        "multi-core degenerate path broke golden parity:\n{}",
        mismatches.join("\n")
    );
}

#[test]
fn results_are_quantum_invariant_in_the_degenerate_topology() {
    // With one tenant on one core, the quantum is pure bookkeeping: the
    // access stream, scheduling (none), and settle cadence (once per run)
    // are identical for any slicing.
    for quantum in [1_000, 333_333, u64::MAX] {
        let params = MultiCoreParams {
            cores: 1,
            tenants: 1,
            quantum,
            demotions_per_quantum: 0,
        };
        let mut mc = MultiCoreSim::from_workload(Config::tlb_lite(), Workload::Mcf, params, SEED);
        let got = dump(&mc.run(200_000).per_core[0].run);
        let mut plain =
            eeat_core::Simulator::from_workload(Config::tlb_lite(), Workload::Mcf, SEED);
        let want = dump(&plain.run(200_000));
        assert_eq!(got, want, "quantum {quantum} diverged");
    }
}
