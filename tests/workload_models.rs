//! Integration tests: the synthetic workload models exhibit the behavioural
//! signatures the paper reports for their real counterparts.

use eeat::core::{Config, Simulator};
use eeat::workloads::Workload;

const INSTR: u64 = 1_500_000;

fn run(config: Config, workload: Workload) -> eeat::core::RunResult {
    let mut sim = Simulator::from_workload(config, workload, 42);
    sim.run(INSTR)
}

#[test]
fn all_intensive_workloads_exceed_the_papers_threshold() {
    // The paper defines TLB-intensive as > 5 L1 MPKI with 4 KiB pages.
    for &w in &Workload::TLB_INTENSIVE {
        let r = run(Config::four_k(), w);
        assert!(
            r.stats.l1_mpki() > 5.0,
            "{w}: L1 MPKI {:.2}",
            r.stats.l1_mpki()
        );
    }
}

#[test]
fn mcf_and_cactus_are_walk_heavy() {
    // §3.2: "applications that suffer frequently from page walks, such as
    // cactusADM and mcf" — walk energy dominates their 4 KiB profile.
    for w in [Workload::Mcf, Workload::CactusADM] {
        let r = run(Config::four_k(), w);
        let walk_share = r.energy.walks_pj() / r.energy.total_pj();
        assert!(walk_share > 0.4, "{w}: walk share {walk_share:.2}");
    }
    // Counterpoint: canneal is L1-lookup dominated.
    let r = run(Config::four_k(), Workload::Canneal);
    let l1_share = r.energy.l1_pj() / r.energy.total_pj();
    assert!(l1_share > 0.5, "canneal L1 share {l1_share:.2}");
}

#[test]
fn fragmented_workloads_hit_the_4k_tlb_under_thp() {
    // Table 5: canneal and mummer draw ≥ ~85% of their L1 hits from the
    // 4 KiB TLB even with THP enabled.
    for w in [Workload::Canneal, Workload::Mummer] {
        let r = run(Config::tlb_lite(), w);
        let (h4k, _, _, _) = r.stats.l1_hit_shares();
        assert!(h4k > 0.8, "{w}: 4K hit share {h4k:.2}");
    }
    // Counterpoint: GemsFDTD and zeusmp are 2 MiB-hit dominated.
    for w in [Workload::GemsFDTD, Workload::Zeusmp] {
        let r = run(Config::tlb_lite(), w);
        let (_, h2m, _, _) = r.stats.l1_hit_shares();
        assert!(h2m > 0.5, "{w}: 2M hit share {h2m:.2}");
    }
}

#[test]
fn footprints_are_fully_mapped_and_range_counts_match_vmas() {
    for &w in &Workload::TLB_INTENSIVE {
        let sim = Simulator::from_workload(Config::rmm_lite(), w, 42);
        let asp = sim.address_space();
        let spec = w.spec();
        assert_eq!(
            asp.range_table().len() as u32,
            spec.vma_count(),
            "{w}: one range per allocation request"
        );
        assert_eq!(
            asp.range_table().covered_bytes(),
            (asp.base_pages() + asp.huge_pages() * 512) * 4096,
            "{w}: ranges cover the whole mapped footprint"
        );
    }
}

#[test]
fn phased_workloads_show_mpki_variation_over_time() {
    // Figure 4: astar changes phases (map-heavy search, then heap-heavy
    // backtracking at the 30 M-instruction boundary) with visibly
    // different MPKI at 4 KiB pages.
    let mut sim = Simulator::from_workload(Config::four_k(), Workload::Astar, 42);
    let (_, timeline) = sim.run_with_timeline(40_000_000, 5_000_000);
    let mpkis: Vec<f64> = timeline.iter().map(|p| p.l1_mpki).collect();
    let before = mpkis[..5].iter().sum::<f64>() / 5.0; // phase 0
    let after = mpkis[6..].iter().sum::<f64>() / (mpkis.len() - 6) as f64;
    let ratio = before.max(after) / before.min(after).max(1e-9);
    assert!(ratio > 1.3, "astar phases should differ: {mpkis:?}");
}

#[test]
fn light_workloads_stay_light() {
    // Figure 12's workloads stress the TLBs less (the paper's selection
    // criterion in reverse).
    for w in [
        Workload::Povray,
        Workload::Swaptions,
        Workload::Hmmer,
        Workload::Gamess,
        Workload::Namd,
    ] {
        let r = run(Config::four_k(), w);
        assert!(
            r.stats.l1_mpki() < 6.0,
            "{w}: L1 MPKI {:.2} should be light",
            r.stats.l1_mpki()
        );
    }
}

#[test]
fn footprint_scale_orders_l2_pressure() {
    // Bigger random-touch footprints stress L2/walks more: mcf (1.6 GB)
    // must out-walk omnetpp (128 MB) at 4 KiB pages.
    let mcf = run(Config::four_k(), Workload::Mcf);
    let omnetpp = run(Config::four_k(), Workload::Omnetpp);
    assert!(mcf.stats.l2_mpki() > omnetpp.stats.l2_mpki());
}

#[test]
fn every_catalogued_workload_simulates() {
    // Smoke: all 43 models build an address space and run under THP.
    for w in Workload::all() {
        let mut sim = Simulator::from_workload(Config::thp(), w, 7);
        let r = sim.run(120_000);
        assert!(r.stats.accesses > 0, "{w} produced no accesses");
        assert_eq!(
            r.stats.l1_hits() + r.stats.l1_misses,
            r.stats.accesses,
            "{w}"
        );
    }
}
