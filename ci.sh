#!/usr/bin/env sh
# Offline CI gate: format, lint, build, test. No network access required —
# the workspace has zero external dependencies.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release --offline

echo "==> cargo test -q"
cargo test --workspace -q --offline

echo "==> golden-fixture parity (fails on any drift in simulation results)"
cargo test --release -q --offline --test golden_parity --test block_equivalence

echo "==> differential fuzz smoke (8 seeds x 10k steps per target)"
EEAT_FUZZ_SEEDS=8 cargo run --release --offline -p eeat-bench --bin fuzz -- \
    --instructions 10_000 --seed 1

echo "==> throughput harness smoke"
cargo run --release --offline -p eeat-bench --bin throughput -- \
    --smoke --out BENCH_throughput_smoke.json

echo "==> ci.sh: all checks passed"
