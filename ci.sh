#!/usr/bin/env sh
# Offline CI gate: format, lint, build, test. No network access required —
# the workspace has zero external dependencies.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> pipeline dispatch lint (org policy flows through StepCtx, never raw config reads)"
if grep -rn 'unified_l1\|config\.' crates/core/src/pipeline/ | grep -v ':[[:space:]]*//'; then
    echo "pipeline stages must not branch on Config directly; extend ProbePlan/StepCtx instead" >&2
    exit 1
fi

echo "==> hot-path emission lint (probe stages bump BlockDeltas, never emit per access)"
if grep -n 'sinks\.emit' \
    crates/core/src/pipeline/l1_probe.rs \
    crates/core/src/pipeline/l2_probe.rs | grep -v ':[[:space:]]*//'; then
    echo "per-access sinks.emit reappeared in a probe stage; accumulate in BlockDeltas and let flush_deltas settle it" >&2
    exit 1
fi

echo "==> cargo build --release"
cargo build --workspace --release --offline

echo "==> cargo test -q"
cargo test --workspace -q --offline

echo "==> golden-fixture parity (fails on any drift in simulation results)"
test -f tests/fixtures/golden/colt.txt || {
    echo "missing CoLT golden fixture; run EEAT_BLESS=1 cargo test --test golden_parity" >&2
    exit 1
}
cargo test --release -q --offline --test golden_parity --test block_equivalence
cargo test --release -q --offline -p eeat-core --test delta_settle_equivalence

# Smoke runs write their artifacts to a scratch results dir so the
# checked-in results/ stays pristine.
SCRATCH="$(mktemp -d)"
trap 'rm -rf "$SCRATCH"' EXIT

echo "==> differential fuzz smoke (8 seeds x 10k steps per target)"
EEAT_FUZZ_SEEDS=8 EEAT_RESULTS="$SCRATCH" cargo run --release --offline \
    -p eeat-bench --bin fuzz -- --instructions 10_000 --seed 1 \
    2> "$SCRATCH/fuzz.stderr" || { cat "$SCRATCH/fuzz.stderr" >&2; exit 1; }
cat "$SCRATCH/fuzz.stderr" >&2
grep -q "target colt" "$SCRATCH/fuzz.stderr" || {
    echo "fuzz smoke never exercised the colt target" >&2
    exit 1
}
grep -q "target multicore" "$SCRATCH/fuzz.stderr" || {
    echo "fuzz smoke never exercised the multicore target" >&2
    exit 1
}
grep -q "target nested" "$SCRATCH/fuzz.stderr" || {
    echo "fuzz smoke never exercised the nested (virtualized) target" >&2
    exit 1
}

echo "==> multi-core scaling smoke + thread determinism (parallel == sequential)"
mkdir -p "$SCRATCH/cores_seq" "$SCRATCH/cores_par"
EEAT_THREADS=1 EEAT_SERIES=1 EEAT_RESULTS="$SCRATCH/cores_seq" cargo run --release --offline \
    -p eeat-bench --bin cores -- --instructions 200_000 --seed 1
EEAT_THREADS=4 EEAT_SERIES=1 EEAT_RESULTS="$SCRATCH/cores_par" cargo run --release --offline \
    -p eeat-bench --bin cores -- --instructions 200_000 --seed 1 > /dev/null
diff "$SCRATCH/cores_seq/cores.txt" "$SCRATCH/cores_par/cores.txt" || {
    echo "EEAT_THREADS=4 cores run diverged from the sequential run" >&2
    exit 1
}
for f in "$SCRATCH"/cores_seq/*.series.jsonl; do
    diff "$f" "$SCRATCH/cores_par/$(basename "$f")" || {
        echo "per-core series diverged between sequential and parallel runs" >&2
        exit 1
    }
done

echo "==> CoLT head-to-head smoke"
EEAT_RESULTS="$SCRATCH" cargo run --release --offline -p eeat-bench --bin colt -- \
    --instructions 200_000 --workloads mcf,canneal

echo "==> virtualized (nested walk) smoke"
# Native bit-parity under virtualized configs is asserted inside the bin
# (identical L1/L2 miss counts per cell); here we additionally pin the
# cold-walk protocol: a fresh 2D 4K walk must out-cost a native one.
EEAT_RESULTS="$SCRATCH" cargo run --release --offline -p eeat-bench --bin virt -- \
    --instructions 200_000 --workloads mcf,canneal
awk -F'[:,]' '/"cold\/nested_4k_refs"/ { found = 1
    if ($2 + 0 <= 4) { printf "cold nested walk cost %s refs, expected > 4\n", $2; bad = 1 }
} END { exit (bad || !found) }' "$SCRATCH/virt.json" || {
    echo "virt smoke missing or failing the cold nested-walk cost check" >&2
    exit 1
}

echo "==> throughput harness smoke"
# The BENCH_* summary deliberately isn't an eeat-run-artifact/v1 file, so it
# lives in a subdir the schema-validation glob below doesn't sweep up.
mkdir -p "$SCRATCH/bench"
EEAT_RESULTS="$SCRATCH" cargo run --release --offline -p eeat-bench --bin throughput -- \
    --smoke --out "$SCRATCH/bench/BENCH_throughput_smoke.json"

echo "==> throughput floor (smoke; catches hot-loop regressions, e.g. per-access settling)"
# Conservative bar: the smoke cells measure ~12-15M acc/s on this box;
# 7M leaves ~2x headroom for CI noise while still failing well before the
# hot loop regresses to per-access event emission territory.
awk -F'[:,]' '/"accesses_per_sec"/ {
    if ($2 + 0 < 7000000) { printf "accesses_per_sec%s is below the 7M floor\n", $2; bad = 1 }
} END { exit bad }' "$SCRATCH/bench/BENCH_throughput_smoke.json" || {
    echo "throughput smoke fell below the floor; profile before raising the budget" >&2
    exit 1
}

echo "==> telemetry smoke (fig2 with per-epoch series + sampled trace)"
EEAT_RESULTS="$SCRATCH" EEAT_SERIES=1 EEAT_TRACE=1 cargo run --release --offline \
    -p eeat-bench --bin fig2 -- --instructions 200_000
ls "$SCRATCH"/fig2.*.series.jsonl "$SCRATCH"/fig2.*.trace.jsonl > /dev/null

echo "==> span + heartbeat smoke (chrome trace sidecars validate, heartbeat lines parse)"
# Own subdir: .trace.json sidecars must not get swept up by the
# run-artifact schema validation glob below.
mkdir -p "$SCRATCH/spans"
EEAT_RESULTS="$SCRATCH/spans" EEAT_SPANS=1 \
    EEAT_HEARTBEAT="$SCRATCH/spans/heartbeat.jsonl" EEAT_HEARTBEAT_EVERY=50000 \
    cargo run --release --offline -p eeat-bench --bin fig2 -- \
    --instructions 200_000 --workloads mcf > /dev/null
ls "$SCRATCH"/spans/fig2.*.trace.json > /dev/null
cargo run --release --offline -p eeat-bench --bin report_diff -- \
    --check-trace "$SCRATCH"/spans/fig2.*.trace.json
grep -q '"schema":"eeat-heartbeat/v1"' "$SCRATCH/spans/heartbeat.jsonl" || {
    echo "heartbeat smoke produced no eeat-heartbeat/v1 records" >&2
    exit 1
}
grep -q '"final":true' "$SCRATCH/spans/heartbeat.jsonl" || {
    echo "heartbeat smoke never emitted its final beat" >&2
    exit 1
}

echo "==> tail-latency regression gate (tails p99 vs committed baseline)"
# The same pinned cell as the committed baseline: simulation results are
# deterministic, so any dist/*/p99 drift is a real behavior change.
mkdir -p "$SCRATCH/tails"
EEAT_RESULTS="$SCRATCH/tails" cargo run --release --offline -p eeat-bench --bin tails -- \
    --instructions 300_000 --seed 42 --workloads mcf > /dev/null
cargo run --release --offline -p eeat-bench --bin report_diff -- \
    "$SCRATCH/tails/tails.json" crates/bench/fixtures/tails/baseline.json \
    --tolerance 0.02 || {
    echo "tail latencies drifted from the committed baseline; re-bless crates/bench/fixtures/tails/baseline.json if intended" >&2
    exit 1
}
# And the gate must actually fire on an injected slowdown.
if cargo run --release --offline -p eeat-bench --bin report_diff -- \
    crates/bench/fixtures/tails/baseline.json \
    crates/bench/fixtures/tails/regressed.json \
    --tolerance 0.02 > "$SCRATCH/tails/regressed.out"; then
    echo "tail-latency gate failed to flag the injected p99 regression" >&2
    exit 1
fi
grep -q 'dist/cell/mcf/4KB/lat/all/p99' "$SCRATCH/tails/regressed.out" || {
    echo "tail-latency gate fired but never named the regressed p99 metric" >&2
    exit 1
}

echo "==> run-artifact schema validation (checked-in and smoke artifacts)"
cargo run --release --offline -p eeat-bench --bin report_diff -- \
    --validate results/*.json "$SCRATCH"/*.json

echo "==> report_diff regression gate (injected 8% energy regression must be flagged)"
if cargo run --release --offline -p eeat-bench --bin report_diff -- \
    crates/bench/fixtures/report_diff/base.json \
    crates/bench/fixtures/report_diff/regressed.json \
    --tolerance 0.01; then
    echo "report_diff failed to flag the injected regression" >&2
    exit 1
fi
# The same pair is clean inside a generous tolerance.
cargo run --release --offline -p eeat-bench --bin report_diff -- \
    crates/bench/fixtures/report_diff/base.json \
    crates/bench/fixtures/report_diff/regressed.json \
    --tolerance 0.25

echo "==> validator completeness (--validate reports every violation, not just the first)"
if cargo run --release --offline -p eeat-bench --bin report_diff -- \
    --validate crates/bench/fixtures/report_diff/invalid_two.json \
    > "$SCRATCH/invalid_two.out"; then
    echo "report_diff --validate accepted a known-invalid fixture" >&2
    exit 1
fi
grep -q 'manifest.seed: missing or not a number' "$SCRATCH/invalid_two.out" || {
    echo "--validate missed the manifest.seed violation" >&2
    exit 1
}
grep -q 'metrics.cell/mcf/4KB/l1_mpki: not a number' "$SCRATCH/invalid_two.out" || {
    echo "--validate missed the non-numeric metric violation" >&2
    exit 1
}

echo "==> ci.sh: all checks passed"
