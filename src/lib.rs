//! # eeat — Energy-Efficient Address Translation
//!
//! A full Rust reproduction of *Energy-Efficient Address Translation*
//! (Karakostas et al., HPCA 2016): the **Lite** way-disabling mechanism for
//! L1 TLBs, the **RMM_Lite** organization with an L1-range TLB, and the whole
//! simulation substrate the paper was evaluated on (TLB hierarchy, x86-64
//! page walker with MMU caches, an OS memory-manager model with transparent
//! huge pages and eager paging, a Cacti-derived energy model, and synthetic
//! workload generators).
//!
//! This facade crate re-exports every workspace crate under one roof:
//!
//! * [`types`] — addresses, page sizes, ranges.
//! * [`tlb`] — set-associative / fully associative / range TLB structures.
//! * [`paging`] — page table, page walker, MMU caches.
//! * [`os`] — VMAs, frame allocation, THP, eager paging, range table.
//! * [`energy`] — the paper's Table 2/3 energy and cycle models.
//! * [`workloads`] — deterministic synthetic benchmark traces.
//! * [`core`] — the Lite mechanism, the six TLB organizations, the simulator,
//!   and the experiment runner.
//!
//! # Quickstart
//!
//! ```
//! use eeat::core::{Config, Simulator};
//! use eeat::workloads::Workload;
//!
//! // Simulate 200k instructions of the mcf model under TLB_Lite.
//! let mut sim = Simulator::from_workload(Config::tlb_lite(), Workload::Mcf, 42);
//! let result = sim.run(200_000);
//! assert!(result.stats.instructions >= 200_000);
//! println!("energy: {:.3} uJ", result.energy.total_nj() / 1000.0);
//! ```

pub use eeat_core as core;
pub use eeat_energy as energy;
pub use eeat_os as os;
pub use eeat_paging as paging;
pub use eeat_tlb as tlb;
pub use eeat_types as types;
pub use eeat_workloads as workloads;
