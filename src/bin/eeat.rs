//! `eeat` — command-line front end to the simulator.
//!
//! ```text
//! eeat list
//! eeat run --workload mcf --config rmm_lite [--instructions N] [--seed S] [--breakdown]
//! eeat compare --workload mcf [--instructions N] [--seed S]
//! eeat replay --trace FILE --config thp [--seed S] [--breakdown]
//! ```

use std::io::Write;
use std::process::ExitCode;

use eeat::core::{Config, Simulator};
use eeat::workloads::Workload;

/// Every named configuration: the organization registry plus the
/// extension configs that ride outside it.
fn config_catalog() -> Vec<Config> {
    let mut named = Config::all_registered().to_vec();
    named.extend([Config::tlb_pred(), Config::fa_thp(), Config::fa_lite()]);
    named
}

fn config_by_name(name: &str) -> Option<Config> {
    config_catalog().into_iter().find(|c| {
        c.name.eq_ignore_ascii_case(name) || c.name.replace('_', "-").eq_ignore_ascii_case(name)
    })
}

struct Args {
    workload: Option<Workload>,
    config: Option<Config>,
    trace: Option<String>,
    instructions: u64,
    seed: u64,
    breakdown: bool,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut parsed = Args {
        workload: None,
        config: None,
        trace: None,
        instructions: 10_000_000,
        seed: 42,
        breakdown: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workload" | "-w" => {
                let name = it.next().ok_or("--workload needs a value")?;
                parsed.workload = Some(
                    Workload::by_name(name).ok_or_else(|| format!("unknown workload {name}"))?,
                );
            }
            "--config" | "-c" => {
                let name = it.next().ok_or("--config needs a value")?;
                parsed.config =
                    Some(config_by_name(name).ok_or_else(|| format!("unknown config {name}"))?);
            }
            "--instructions" | "-n" => {
                let v = it.next().ok_or("--instructions needs a value")?;
                parsed.instructions = v
                    .replace('_', "")
                    .parse()
                    .map_err(|_| format!("bad instruction count {v}"))?;
            }
            "--seed" | "-s" => {
                let v = it.next().ok_or("--seed needs a value")?;
                parsed.seed = v.parse().map_err(|_| format!("bad seed {v}"))?;
            }
            "--trace" | "-t" => {
                parsed.trace = Some(it.next().ok_or("--trace needs a value")?.clone());
            }
            "--breakdown" | "-b" => parsed.breakdown = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(parsed)
}

fn cmd_list() {
    // Write through a fallible handle so piping into `head` (broken pipe)
    // exits quietly instead of panicking.
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let _ = writeln!(out, "workloads (TLB-intensive set first):");
    for w in Workload::all() {
        let spec = w.spec();
        if writeln!(
            out,
            "  {:<14} {:>6} MiB  {:>3} VMAs  [{}]",
            w.name(),
            spec.footprint_bytes() >> 20,
            spec.vma_count(),
            w.suite()
        )
        .is_err()
        {
            return;
        }
    }
    let names: Vec<&str> = config_catalog().iter().map(|c| c.name).collect();
    let _ = writeln!(out, "\nconfigs: {}", names.join(" "));
}

fn cmd_run(args: Args) -> Result<(), String> {
    let workload = args.workload.ok_or("run needs --workload")?;
    let config = args.config.ok_or("run needs --config")?;
    println!("{config}");
    let mut sim = Simulator::from_workload(config, workload, args.seed);
    let r = sim.run(args.instructions);
    println!("{}", r.stats);
    println!("{}", r.cycles);
    println!(
        "dynamic energy: {:.3} uJ ({:.2} pJ/op)",
        r.energy.total_pj() / 1e6,
        r.energy.total_pj() / r.stats.accesses as f64
    );
    if let Some(lite) = sim.lite() {
        println!("{lite}");
    }
    if let Some(p) = sim.predictor() {
        println!("{p}");
    }
    if args.breakdown {
        println!("{}", r.energy);
    }
    Ok(())
}

fn cmd_compare(args: Args) -> Result<(), String> {
    let workload = args.workload.ok_or("compare needs --workload")?;
    println!(
        "{workload}: {} M instructions, seed {}\n",
        args.instructions / 1_000_000,
        args.seed
    );
    println!(
        "{:<9}  {:>8}  {:>8}  {:>11}  {:>12}  {:>10}",
        "config", "L1 MPKI", "L2 MPKI", "energy (uJ)", "miss cycles", "vs 4KB"
    );
    let mut baseline = None;
    for config in Config::all_registered() {
        let name = config.name;
        let mut sim = Simulator::from_workload(config, workload, args.seed);
        let r = sim.run(args.instructions);
        let energy = r.energy.total_pj();
        let base = *baseline.get_or_insert(energy);
        println!(
            "{name:<9}  {:>8.2}  {:>8.2}  {:>11.2}  {:>12}  {:>9.2}x",
            r.stats.l1_mpki(),
            r.stats.l2_mpki(),
            energy / 1e6,
            r.cycles.total(),
            energy / base
        );
    }
    Ok(())
}

fn cmd_replay(args: Args) -> Result<(), String> {
    use eeat::workloads::trace_file;
    let path = args.trace.ok_or("replay needs --trace")?;
    let config = args.config.unwrap_or_else(Config::thp);
    let file = std::fs::File::open(&path).map_err(|e| format!("open {path}: {e}"))?;
    let accesses =
        trace_file::read_trace(std::io::BufReader::new(file)).map_err(|e| e.to_string())?;
    if accesses.is_empty() {
        return Err("trace is empty".into());
    }
    let one_pass: u64 = accesses.iter().map(|a| u64::from(a.instructions())).sum();
    println!(
        "{}: {} accesses, {} instructions per pass",
        path,
        accesses.len(),
        one_pass
    );
    println!("{config}");
    let mut sim = Simulator::from_trace(config, accesses, args.seed);
    let r = sim.run(one_pass);
    println!("{}", r.stats);
    println!("{}", r.cycles);
    println!(
        "dynamic energy: {:.3} uJ ({:.2} pJ/op)",
        r.energy.total_pj() / 1e6,
        r.energy.total_pj() / r.stats.accesses as f64
    );
    if args.breakdown {
        println!("{}", r.energy);
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: eeat <list|run|compare|replay> [--workload W] [--config C] \
                 [--trace FILE] [--instructions N] [--seed S] [--breakdown]";
    let Some(command) = argv.first() else {
        eprintln!("{usage}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "list" => {
            cmd_list();
            Ok(())
        }
        "run" => parse_args(&argv[1..]).and_then(cmd_run),
        "compare" => parse_args(&argv[1..]).and_then(cmd_compare),
        "replay" => parse_args(&argv[1..]).and_then(cmd_replay),
        other => Err(format!("unknown command {other}\n{usage}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
